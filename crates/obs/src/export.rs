//! Trace exporters: Chrome trace-event JSON and a plain-text hierarchical
//! summary.
//!
//! The Chrome export emits a flat JSON array of trace events loadable in
//! Perfetto / `chrome://tracing`: `Complete` spans as `"X"` events,
//! instants as `"i"`, plus `"M"` metadata naming the two pseudo-processes
//! — pid 1 is the wall-clock timeline, pid 2 the deterministic virtual
//! timeline (serve path). Thread ids are the recorder's stable per-thread
//! ids.
//!
//! The text summary aggregates events by `category.name`: count, total
//! and mean duration, ordered deterministically. Scheduler stall time is
//! totaled on its own line — the number the subtree-speculation roadmap
//! item needs at a glance.

use crate::recorder::{Cat, Clock, Phase, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string into a JSON string literal (names are static and
/// ASCII by convention, but the exporter never trusts that).
fn json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Trace {
    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total duration (µs) of all `Complete` spans whose name starts with
    /// `prefix`, optionally filtered by category.
    pub fn total_dur_us(&self, cat: Option<Cat>, prefix: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.phase == Phase::Complete)
            .filter(|e| cat.is_none_or(|c| e.cat == c))
            .filter(|e| e.name.starts_with(prefix))
            .map(|e| e.dur_us)
            .sum()
    }

    /// Number of events whose name starts with `prefix`, optionally
    /// filtered by category.
    pub fn count(&self, cat: Option<Cat>, prefix: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.cat == cat.unwrap_or(e.cat) && e.name.starts_with(prefix))
            .count()
    }

    /// Renders the trace as a Chrome trace-event JSON array (load in
    /// Perfetto or `chrome://tracing`).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push('[');
        // Pseudo-process metadata: one timeline per clock.
        for (pid, label) in [(1u32, "wall-clock"), (2u32, "virtual-time")] {
            if pid == 2 && !self.events.iter().any(|e| e.clock == Clock::Virtual) {
                continue;
            }
            if out.len() > 1 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":"
            );
            json_str(label, &mut out);
            out.push_str("}}");
        }
        for e in &self.events {
            out.push(',');
            out.push_str("{\"name\":");
            json_str(e.name, &mut out);
            out.push_str(",\"cat\":");
            json_str(e.cat.as_str(), &mut out);
            let (ph, pid) = match (e.phase, e.clock) {
                (Phase::Complete, Clock::Wall) => ("X", 1),
                (Phase::Complete, Clock::Virtual) => ("X", 2),
                (Phase::Instant, Clock::Wall) => ("i", 1),
                (Phase::Instant, Clock::Virtual) => ("i", 2),
            };
            let _ =
                write!(out, ",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{},\"ts\":{}", e.tid, e.ts_us);
            if e.phase == Phase::Complete {
                let _ = write!(out, ",\"dur\":{}", e.dur_us);
            }
            if e.phase == Phase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            let _ = write!(out, ",\"args\":{{\"lane\":{}}}}}", e.lane);
        }
        out.push(']');
        out
    }

    /// Renders a plain-text hierarchical summary: per `category.name`
    /// aggregates (count, total ms, mean µs), the scheduler-stall total,
    /// and the dropped-event count when the rings overflowed.
    pub fn text_summary(&self) -> String {
        #[derive(Default)]
        struct Agg {
            count: u64,
            total_us: u64,
        }
        let mut by_key: BTreeMap<(&'static str, &'static str), Agg> = BTreeMap::new();
        for e in &self.events {
            let a = by_key.entry((e.cat.as_str(), e.name)).or_default();
            a.count += 1;
            a.total_us += e.dur_us;
        }
        let mut out = String::from("trace summary\n");
        let mut last_cat = "";
        for ((cat, name), a) in &by_key {
            if *cat != last_cat {
                let _ = writeln!(out, "  {cat}");
                last_cat = cat;
            }
            let mean = a.total_us.checked_div(a.count).unwrap_or(0);
            let _ = writeln!(
                out,
                "    {name:<24} count={:<8} total={:.3}ms mean={}us",
                a.count,
                a.total_us as f64 / 1e3,
                mean
            );
        }
        let stall_us = self.total_dur_us(Some(Cat::Scheduler), "stall");
        let explore_us = self.total_dur_us(Some(Cat::Worker), "explore");
        let _ = writeln!(out, "  scheduler stall total: {:.3}ms", stall_us as f64 / 1e3);
        let _ = writeln!(out, "  worker explore total:  {:.3}ms", explore_us as f64 / 1e3);
        let spec_walk_us = self.total_dur_us(Some(Cat::Worker), "spec.explore");
        let adopted = self.count(Some(Cat::Scheduler), "spec.adopt");
        let wasted = self.count(Some(Cat::Scheduler), "spec.waste");
        if spec_walk_us > 0 || adopted > 0 || wasted > 0 {
            let _ = writeln!(
                out,
                "  speculation: adopted={adopted} wasted={wasted} walk total={:.3}ms",
                spec_walk_us as f64 / 1e3
            );
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "  ({} events dropped by ring overwrite)", self.dropped);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Event;

    fn ev(phase: Phase, cat: Cat, name: &'static str, ts: u64, dur: u64, clock: Clock) -> Event {
        Event { phase, cat, name, ts_us: ts, dur_us: dur, lane: 1, tid: 3, clock }
    }

    fn sample() -> Trace {
        Trace {
            events: vec![
                ev(Phase::Complete, Cat::Worker, "explore", 10, 50, Clock::Wall),
                ev(Phase::Complete, Cat::Scheduler, "stall.reveal", 20, 30, Clock::Wall),
                ev(Phase::Instant, Cat::Capture, "pool_hit", 25, 0, Clock::Wall),
                ev(Phase::Complete, Cat::Gateway, "task", 0, 2_000_000, Clock::Virtual),
                ev(Phase::Complete, Cat::Worker, "spec.explore", 60, 40, Clock::Wall),
                ev(Phase::Instant, Cat::Scheduler, "spec.adopt", 100, 0, Clock::Wall),
                ev(Phase::Instant, Cat::Scheduler, "spec.adopt", 110, 0, Clock::Wall),
                ev(Phase::Instant, Cat::Scheduler, "spec.waste", 120, 0, Clock::Wall),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn chrome_json_is_a_valid_event_array() {
        let json = sample().to_chrome_json();
        let v = serde_json::parse_value(&json).expect("export must be valid JSON");
        let arr = v.as_array().expect("top level is an array");
        // 2 metadata + 8 events.
        assert_eq!(arr.len(), 10);
        for e in arr {
            let o = e.as_object().expect("every trace event is an object");
            assert!(o.get("name").is_some());
            assert!(o.get("ph").is_some());
            assert!(o.get("pid").is_some());
        }
        let task = arr
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("task"))
            .expect("virtual task span exported");
        assert_eq!(task.get("pid").and_then(|p| p.as_u64()), Some(2), "virtual clock is pid 2");
        assert_eq!(task.get("dur").and_then(|d| d.as_u64()), Some(2_000_000));
    }

    #[test]
    fn summary_totals_stall_and_explore_time() {
        let s = sample().text_summary();
        assert!(s.contains("stall.reveal"), "stall spans listed: {s}");
        assert!(s.contains("scheduler stall total: 0.030ms"), "{s}");
        assert!(s.contains("worker explore total:  0.050ms"), "{s}");
    }

    #[test]
    fn summary_reports_speculation_adoption_and_waste() {
        let s = sample().text_summary();
        assert!(s.contains("speculation: adopted=2 wasted=1 walk total=0.040ms"), "{s}");
        // A trace with no speculative activity omits the line entirely.
        let quiet = Trace {
            events: vec![ev(Phase::Complete, Cat::Worker, "explore", 10, 50, Clock::Wall)],
            dropped: 0,
        };
        assert!(!quiet.text_summary().contains("speculation:"));
    }

    #[test]
    fn prefix_totals_filter_by_category() {
        let t = sample();
        assert_eq!(t.total_dur_us(Some(Cat::Scheduler), "stall"), 30);
        assert_eq!(t.total_dur_us(Some(Cat::Worker), "stall"), 0);
        assert_eq!(t.total_dur_us(None, ""), 50 + 30 + 2_000_000 + 40);
        assert_eq!(t.count(Some(Cat::Capture), "pool"), 1);
    }
}
