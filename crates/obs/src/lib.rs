//! `dmi-obs`: determinism-preserving structured tracing and metrics.
//!
//! Every layer of the engine — rip scheduler, worker shards, capture
//! cache, serving gateway, LLM batcher, persistent store — is threaded
//! with hooks from this crate. The contract that makes that safe:
//!
//! 1. **Observation only.** Hooks write to side-band buffers; nothing
//!    recorded is ever read back by the engine. Byte-identity oracles
//!    hold with tracing on (release-gated in `tests/identity.rs`).
//! 2. **Free when off.** Tracing defaults to off; every hook is one
//!    relaxed atomic load and a return — no allocation, no clock read,
//!    no lock (`tests/obs.rs` pins the "records nothing" half).
//! 3. **Two clocks.** Wall-clock spans time the real machine; virtual
//!    spans ([`vt_span`]) ride the serve path's deterministic virtual
//!    clock and are identical run to run.
//!
//! See `docs/observability.md` for the recorder design, the determinism
//! argument, and how to read a stall timeline.

mod export;
mod metrics;
mod recorder;

pub use metrics::{Histogram, KvLine, Metric, Registry, LATENCY_BOUNDS_SECS};
pub use recorder::{
    clear, complete_span, drain, enabled, instant, now_us, set_enabled, span, tallies, tally,
    vt_span, Cat, Clock, Event, Phase, SpanGuard, Trace, RING_CAPACITY,
};
