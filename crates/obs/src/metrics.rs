//! The typed metrics registry and the labeled key=value line builder.
//!
//! [`Registry`] holds named [`Metric`]s — counters, gauges, and
//! histograms with *fixed* bucket boundaries — in a `BTreeMap`, so every
//! rendering of the same measurements is deterministic: same keys, same
//! order, same bucket edges. The bench reporters build a registry from
//! the engine's stat structs and render views over it ([`KvLine`] lines,
//! [`Registry::summary_table`]); nothing here feeds back into the engine.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Fixed bucket boundaries (seconds) used for latency histograms across
/// the workspace — pinned so histogram output never depends on observed
/// data ranges.
pub const LATENCY_BOUNDS_SECS: &[f64] = &[0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0];

/// A histogram over fixed bucket boundaries: `bounds.len() + 1` buckets,
/// bucket `i` counting observations `<= bounds[i]` (the last bucket is
/// the overflow).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// A fresh histogram over the given (sorted, finite) boundaries.
    pub fn new(bounds: &[f64]) -> Histogram {
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], sum: 0.0, count: 0 }
    }

    /// Folds one observation into its bucket.
    pub fn observe(&mut self, v: f64) {
        let idx = self.bounds.iter().position(|b| v <= *b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The bucket boundaries this histogram was created with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Compact rendering: `le0.01:3 le0.1:7 inf:1` (empty buckets are
    /// skipped; deterministic for fixed bounds).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, c) in self.counts.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            if i < self.bounds.len() {
                let _ = write!(out, "le{}:{c}", self.bounds[i]);
            } else {
                let _ = write!(out, "inf:{c}");
            }
        }
        out
    }
}

/// One typed metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic event count.
    Counter(u64),
    /// Last-write-wins measurement.
    Gauge(f64),
    /// Distribution over fixed buckets.
    Histogram(Histogram),
}

/// A named collection of typed metrics (deterministic iteration order).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: BTreeMap<String, Metric>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds to a counter (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        match self.metrics.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += by,
            other => panic!("metric `{name}` is not a counter: {other:?}"),
        }
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.metrics.insert(name.to_string(), Metric::Gauge(v));
    }

    /// Folds an observation into a histogram (created with `bounds` on
    /// first use; later calls must agree on the boundaries).
    pub fn observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => {
                debug_assert_eq!(h.bounds(), bounds, "histogram `{name}` bucket bounds changed");
                h.observe(v);
            }
            other => panic!("metric `{name}` is not a histogram: {other:?}"),
        }
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Gauge value (0.0 when absent).
    pub fn gauge(&self, name: &str) -> f64 {
        match self.metrics.get(name) {
            Some(Metric::Gauge(g)) => *g,
            _ => 0.0,
        }
    }

    /// The histogram under `name`, when one exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.metrics.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// All metric names, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.metrics.keys().map(|s| s.as_str())
    }

    /// Number of metrics registered.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Builds a registry view over a drained trace: per `category.name`
    /// span counts and total milliseconds (wall and virtual timelines
    /// kept apart by suffix).
    pub fn from_trace(trace: &crate::recorder::Trace) -> Registry {
        use crate::recorder::{Clock, Phase};
        let mut reg = Registry::new();
        for e in &trace.events {
            let clock = match e.clock {
                Clock::Wall => "",
                Clock::Virtual => ".vt",
            };
            let key = format!("{}.{}{clock}", e.cat.as_str(), e.name);
            reg.inc(&format!("{key}.count"), 1);
            if e.phase == Phase::Complete {
                let total = format!("{key}.total_ms");
                let prev = reg.gauge(&total);
                reg.set_gauge(&total, prev + e.dur_us as f64 / 1e3);
            }
        }
        reg
    }

    /// Renders every metric as an aligned two-column table, in name
    /// order.
    pub fn summary_table(&self) -> String {
        let width = self.metrics.keys().map(|k| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, m) in &self.metrics {
            let val = match m {
                Metric::Counter(c) => c.to_string(),
                Metric::Gauge(g) => format!("{g:.3}"),
                Metric::Histogram(h) => h.render(),
            };
            let _ = writeln!(out, "{name:<width$}  {val}");
        }
        out
    }
}

/// The one labeled key=value line builder behind every bench reporter
/// line: `"{label} {subject}: k1=v1 k2=v2 ..."`.
#[derive(Debug, Clone)]
pub struct KvLine {
    head: String,
    parts: Vec<String>,
}

impl KvLine {
    /// Starts a line: `"{label} {subject}:"`.
    pub fn new(label: &str, subject: impl std::fmt::Display) -> KvLine {
        KvLine { head: format!("{label} {subject}:"), parts: Vec::new() }
    }

    /// Appends `key=value` with `Display` formatting.
    pub fn field(mut self, key: &str, value: impl std::fmt::Display) -> KvLine {
        self.parts.push(format!("{key}={value}"));
        self
    }

    /// Appends `key=num/den` (a ratio of counts).
    pub fn frac(self, key: &str, num: u64, den: u64) -> KvLine {
        self.field(key, format_args!("{num}/{den}"))
    }

    /// Appends `key=12.3%` from a 0..=1 rate.
    pub fn pct(self, key: &str, rate: f64) -> KvLine {
        self.field(key, format_args!("{:.1}%", rate * 100.0))
    }

    /// Appends `key=1.2s` (one decimal, seconds).
    pub fn secs(self, key: &str, secs: f64) -> KvLine {
        self.field(key, format_args!("{secs:.1}s"))
    }

    /// Appends `key=1.23ms` (two decimals, milliseconds).
    pub fn ms(self, key: &str, ms: f64) -> KvLine {
        self.field(key, format_args!("{ms:.2}ms"))
    }

    /// Renders the finished line.
    pub fn render(&self) -> String {
        let mut out = self.head.clone();
        for p in &self.parts {
            out.push(' ');
            out.push_str(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_are_typed() {
        let mut reg = Registry::new();
        reg.inc("rip.clicks", 5);
        reg.inc("rip.clicks", 2);
        reg.set_gauge("serve.p50", 38.25);
        reg.observe("lat", LATENCY_BOUNDS_SECS, 0.05);
        reg.observe("lat", LATENCY_BOUNDS_SECS, 2.0);
        reg.observe("lat", LATENCY_BOUNDS_SECS, 1e9);
        assert_eq!(reg.counter("rip.clicks"), 7);
        assert_eq!(reg.gauge("serve.p50"), 38.25);
        let h = reg.histogram("lat").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.render(), "le0.1:1 le5:1 inf:1");
        assert_eq!(reg.counter("absent"), 0);
    }

    #[test]
    fn summary_table_is_deterministic_and_aligned() {
        let mut reg = Registry::new();
        reg.inc("b.counter", 1);
        reg.set_gauge("a.gauge", 1.5);
        let t = reg.summary_table();
        assert_eq!(t, "a.gauge    1.500\nb.counter  1\n");
    }

    #[test]
    fn kv_line_renders_label_subject_and_fields() {
        let line =
            KvLine::new("capture-pool", "Word").frac("shared", 3, 4).pct("rate", 0.75).render();
        assert_eq!(line, "capture-pool Word: shared=3/4 rate=75.0%");
    }

    #[test]
    fn kv_line_formats_seconds_and_milliseconds() {
        let line = KvLine::new("store", "Word").ms("save", 1.2345).secs("p50", 38.25).render();
        assert_eq!(line, "store Word: save=1.23ms p50=38.2s");
    }
}
