//! The span/event recorder: per-thread ring-buffer collectors behind one
//! global enable flag.
//!
//! # Determinism contract
//!
//! Recording is strictly *observational*: every hook writes into a
//! side-band buffer and returns — no recorded value ever feeds back into
//! a scheduling, caching, or merge decision. Wall-clock timestamps are
//! nondeterministic, but nothing in the engine reads them; the byte
//! streams the identity oracles compare (serialized UNGs, `RunTrace`
//! identity bytes) are computed from application state alone, so a traced
//! run is byte-identical to an untraced one (release-gated in
//! `tests/identity.rs`).
//!
//! # The OFF path
//!
//! Tracing defaults to off. Every entry point begins with one relaxed
//! atomic load and returns immediately when tracing is disabled: no
//! allocation, no lock, no clock read, no thread-local registration.
//! [`SpanGuard`] is a plain struct whose disarmed drop is a no-op, so an
//! instrumented hot path costs one branch when tracing is off.
//!
//! # Collectors
//!
//! When tracing is on, each thread lazily registers one fixed-capacity
//! ring buffer with the global sink on its first event. A full ring
//! overwrites its oldest events (the drop count is carried on the drained
//! [`Trace`]), bounding memory regardless of rip size. [`drain`] collects
//! every thread's events, merges them in timestamp order, and prunes
//! buffers whose threads have exited.
//!
//! Next to the event stream, the recorder keeps *tallies*: named global
//! counters ([`tally`]) incremented at the same sites as the engine's
//! own stat fields. They are immune to ring overflow, which makes them
//! the reference side of the stats-drift cross-checks in `tests/obs.rs`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity (events).
pub const RING_CAPACITY: usize = 1 << 16;

/// Event category: which subsystem emitted it. Doubles as the Chrome
/// trace `cat` field, so timelines filter by subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cat {
    /// Sequential rip driver.
    Rip,
    /// Fleet scheduler commit lanes (stall attribution lives here).
    Scheduler,
    /// Worker-shard exploration.
    Worker,
    /// Capture cache / cross-session capture pool.
    Capture,
    /// Multi-tenant serving gateway.
    Gateway,
    /// LLM batching.
    Llm,
    /// Persistent store codec + disk IO.
    Store,
}

impl Cat {
    /// Stable lowercase label (Chrome trace `cat`, summary grouping).
    pub fn as_str(self) -> &'static str {
        match self {
            Cat::Rip => "rip",
            Cat::Scheduler => "scheduler",
            Cat::Worker => "worker",
            Cat::Capture => "capture",
            Cat::Gateway => "gateway",
            Cat::Llm => "llm",
            Cat::Store => "store",
        }
    }
}

/// Which timeline an event's timestamps live on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Clock {
    /// Real time, microseconds since the recorder epoch.
    Wall,
    /// The deterministic virtual clock of the serve path, microseconds
    /// since virtual time zero.
    Virtual,
}

/// Event shape (maps onto Chrome trace phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A duration span: `ts_us .. ts_us + dur_us` (Chrome `"X"`).
    Complete,
    /// A point event (Chrome `"i"`).
    Instant,
}

/// One recorded event. Fixed-size and allocation-free: names are
/// `&'static str`, the one payload slot is an integer (`lane` — a fleet
/// lane, tenant lane, round index, or byte count, by convention of the
/// emitting site).
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Shape.
    pub phase: Phase,
    /// Emitting subsystem.
    pub cat: Cat,
    /// Event name (static, site-chosen).
    pub name: &'static str,
    /// Start timestamp in microseconds on `clock`.
    pub ts_us: u64,
    /// Duration in microseconds (`Phase::Complete` only, else 0).
    pub dur_us: u64,
    /// Integer payload (lane / tenant / round / bytes).
    pub lane: u64,
    /// Stable small id of the recording thread.
    pub tid: u64,
    /// Which timeline `ts_us` is on.
    pub clock: Clock,
}

/// A drained event stream (see [`drain`]).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events merged across all threads, ordered by `(ts_us, tid)`.
    pub events: Vec<Event>,
    /// Events lost to ring-buffer overwrite before the drain.
    pub dropped: u64,
}

// ------------------------------------------------------------- global state

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

struct Ring {
    buf: Vec<Event>,
    /// Index of the oldest event when the ring has wrapped.
    head: usize,
    wrapped: bool,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, e: Event) {
        if self.buf.len() < RING_CAPACITY {
            self.buf.push(e);
            return;
        }
        self.buf[self.head] = e;
        self.head = (self.head + 1) % RING_CAPACITY;
        self.wrapped = true;
        self.dropped += 1;
    }

    fn take(&mut self) -> (Vec<Event>, u64) {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.wrapped {
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
        } else {
            out.extend_from_slice(&self.buf);
        }
        let dropped = self.dropped;
        self.buf.clear();
        self.head = 0;
        self.wrapped = false;
        self.dropped = 0;
        (out, dropped)
    }
}

struct ThreadBuf {
    tid: u64,
    ring: Mutex<Ring>,
}

fn sink() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static SINK: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

fn tallies_map() -> &'static Mutex<BTreeMap<&'static str, u64>> {
    static TALLIES: OnceLock<Mutex<BTreeMap<&'static str, u64>>> = OnceLock::new();
    TALLIES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
}

fn record(e: Event) {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let buf = Arc::new(ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                ring: Mutex::new(Ring { buf: Vec::new(), head: 0, wrapped: false, dropped: 0 }),
            });
            sink().lock().unwrap().push(Arc::clone(&buf));
            buf
        });
        let mut e = e;
        e.tid = buf.tid;
        buf.ring.lock().unwrap().push(e);
    });
}

// -------------------------------------------------------------- public API

/// Turns tracing on or off (process-global). The recorder epoch is pinned
/// at the first enable so timestamps stay comparable across toggles.
pub fn set_enabled(on: bool) {
    if on {
        epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the recorder epoch. Returns 0 while tracing is
/// disabled (no clock read on the OFF path).
#[inline]
pub fn now_us() -> u64 {
    if !enabled() {
        return 0;
    }
    epoch().elapsed().as_micros() as u64
}

/// RAII wall-clock span: records one `Complete` event on drop. Disarmed
/// (a no-op in and out) while tracing is off.
#[must_use = "a span measures the scope it is bound to"]
pub struct SpanGuard {
    cat: Cat,
    name: &'static str,
    lane: u64,
    start_us: u64,
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end = now_us();
        record(Event {
            phase: Phase::Complete,
            cat: self.cat,
            name: self.name,
            ts_us: self.start_us,
            dur_us: end.saturating_sub(self.start_us),
            lane: self.lane,
            tid: 0,
            clock: Clock::Wall,
        });
    }
}

/// Opens a wall-clock span closed when the returned guard drops.
#[inline]
pub fn span(cat: Cat, name: &'static str, lane: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { cat, name, lane, start_us: 0, armed: false };
    }
    SpanGuard { cat, name, lane, start_us: now_us(), armed: true }
}

/// Records a wall-clock span from explicit endpoints (for intervals whose
/// start and end live in different stack frames, e.g. scheduler stalls).
pub fn complete_span(cat: Cat, name: &'static str, lane: u64, start_us: u64, end_us: u64) {
    if !enabled() {
        return;
    }
    record(Event {
        phase: Phase::Complete,
        cat,
        name,
        ts_us: start_us,
        dur_us: end_us.saturating_sub(start_us),
        lane,
        tid: 0,
        clock: Clock::Wall,
    });
}

/// Records a point event on the wall clock.
#[inline]
pub fn instant(cat: Cat, name: &'static str, lane: u64) {
    if !enabled() {
        return;
    }
    record(Event {
        phase: Phase::Instant,
        cat,
        name,
        ts_us: now_us(),
        dur_us: 0,
        lane,
        tid: 0,
        clock: Clock::Wall,
    });
}

/// Records a span on the deterministic virtual clock (serve path), from
/// explicit virtual seconds. Virtual timestamps are derived from the
/// deterministic simulated latencies, so traced virtual spans are
/// identical run to run.
pub fn vt_span(cat: Cat, name: &'static str, lane: u64, vt_start_secs: f64, vt_end_secs: f64) {
    if !enabled() {
        return;
    }
    let ts = (vt_start_secs * 1e6).round().max(0.0) as u64;
    let end = (vt_end_secs * 1e6).round().max(0.0) as u64;
    record(Event {
        phase: Phase::Complete,
        cat,
        name,
        ts_us: ts,
        dur_us: end.saturating_sub(ts),
        lane,
        tid: 0,
        clock: Clock::Virtual,
    });
}

/// Adds to a named global counter. Tallies live beside the event stream
/// (never dropped by ring overwrite) and mirror the engine's own stat
/// fields one-to-one at the increment site — the drift cross-checks
/// compare the two.
#[inline]
pub fn tally(name: &'static str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    *tallies_map().lock().unwrap().entry(name).or_insert(0) += delta;
}

/// A snapshot of every tally recorded since the last [`clear`].
pub fn tallies() -> BTreeMap<&'static str, u64> {
    tallies_map().lock().unwrap().clone()
}

/// Collects every thread's buffered events into one [`Trace`] (merged in
/// `(ts_us, tid)` order), clearing the buffers. Buffers of threads that
/// have exited are pruned after collection.
pub fn drain() -> Trace {
    let mut events = Vec::new();
    let mut dropped = 0;
    let mut bufs = sink().lock().unwrap();
    for buf in bufs.iter() {
        let (mut evs, d) = buf.ring.lock().unwrap().take();
        events.append(&mut evs);
        dropped += d;
    }
    // A strong count of 1 means only the sink holds the buffer: its
    // thread is gone and it can never receive another event.
    bufs.retain(|b| Arc::strong_count(b) > 1);
    drop(bufs);
    events.sort_by_key(|e| (e.ts_us, e.tid));
    Trace { events, dropped }
}

/// Drops all buffered events and tallies (start of a fresh observation
/// window).
pub fn clear() {
    let _ = drain();
    tallies_map().lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable flag is process-global; tests that toggle it serialize
    // on this lock so they cannot observe each other's windows.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn off_path_records_nothing() {
        let _g = guard();
        set_enabled(false);
        clear();
        {
            let _s = span(Cat::Rip, "should-not-appear", 0);
            instant(Cat::Capture, "nor-this", 1);
            vt_span(Cat::Gateway, "nor-this-either", 0, 0.0, 1.0);
            complete_span(Cat::Scheduler, "silent", 0, 0, 10);
            tally("off.counter", 5);
        }
        let t = drain();
        assert!(t.events.is_empty(), "disabled recorder must buffer nothing");
        assert_eq!(t.dropped, 0);
        assert!(tallies().is_empty(), "disabled recorder must tally nothing");
    }

    #[test]
    fn spans_instants_and_tallies_round_trip() {
        let _g = guard();
        set_enabled(true);
        clear();
        {
            let _outer = span(Cat::Worker, "outer", 7);
            let _inner = span(Cat::Worker, "inner", 7);
            instant(Cat::Capture, "tick", 3);
            tally("unit.count", 2);
            tally("unit.count", 1);
        }
        set_enabled(false);
        let t = drain();
        let names: Vec<&str> = t.events.iter().map(|e| e.name).collect();
        assert!(names.contains(&"outer"));
        assert!(names.contains(&"inner"));
        assert!(names.contains(&"tick"));
        let outer = t.events.iter().find(|e| e.name == "outer").unwrap();
        let inner = t.events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(outer.phase, Phase::Complete);
        assert_eq!(outer.lane, 7);
        // Guards drop inner-first, so the inner interval nests inside.
        assert!(inner.ts_us >= outer.ts_us);
        assert!(inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us);
        assert_eq!(tallies().get("unit.count"), Some(&3));
        clear();
    }

    #[test]
    fn virtual_spans_ride_the_virtual_clock() {
        let _g = guard();
        set_enabled(true);
        clear();
        vt_span(Cat::Gateway, "task", 4, 1.5, 3.25);
        set_enabled(false);
        let t = drain();
        let e = t.events.iter().find(|e| e.name == "task").unwrap();
        assert_eq!(e.clock, Clock::Virtual);
        assert_eq!(e.ts_us, 1_500_000);
        assert_eq!(e.dur_us, 1_750_000);
        clear();
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut ring = Ring { buf: Vec::new(), head: 0, wrapped: false, dropped: 0 };
        let ev = |i: u64| Event {
            phase: Phase::Instant,
            cat: Cat::Rip,
            name: "e",
            ts_us: i,
            dur_us: 0,
            lane: i,
            tid: 0,
            clock: Clock::Wall,
        };
        for i in 0..(RING_CAPACITY as u64 + 10) {
            ring.push(ev(i));
        }
        let (events, dropped) = ring.take();
        assert_eq!(events.len(), RING_CAPACITY);
        assert_eq!(dropped, 10);
        assert_eq!(events[0].ts_us, 10, "oldest events were overwritten");
        assert_eq!(events.last().unwrap().ts_us, RING_CAPACITY as u64 + 9);
    }
}
