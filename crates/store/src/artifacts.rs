//! Value codecs for the domain types the store persists: UNGs, rip
//! journals, window signatures, snapshots, and pooled captures.
//!
//! Reconstruction invariants the byte-identity oracles rest on:
//!
//! - **UNG**: adjacency lists travel verbatim (`Ung::raw_parts` /
//!   `Ung::from_raw_parts`) because their per-list order is insertion
//!   order, which `serde_json::to_string` — the oracle's byte domain —
//!   observes.
//! - **Snapshot**: nodes are replayed through `Snapshot::push` in arena
//!   order. Arena order is DFS order (children ascend), so `push`
//!   rebuilds identical `children` lists; runtime ids are then restored
//!   explicitly, and window roots re-registered in ordinal order.
//! - **ControlType / PatternKind** are encoded as indices into their
//!   `ALL` tables — stable within a format version by definition; any
//!   reordering is a format break and must bump [`crate::codec::FORMAT_VERSION`].

use crate::codec::{corrupt, Dec, Enc, Interner, StoreResult};
use dmi_core::{JournalEntry, RipStats, Ung, UngNode, WindowSig};
use dmi_gui::PooledCapture;
use dmi_uia::{
    ControlId, ControlProps, ControlType, PatternKind, PatternSet, Rect, RuntimeId, Snapshot,
    ToggleState,
};
use std::sync::Arc;

fn enc_control_type(e: &mut Enc, ct: ControlType) {
    let idx = ControlType::ALL
        .iter()
        .position(|c| *c == ct)
        .expect("ControlType::ALL covers every variant");
    e.u8(idx as u8);
}

fn dec_control_type(d: &mut Dec) -> StoreResult<ControlType> {
    let idx = d.u8()? as usize;
    ControlType::ALL
        .get(idx)
        .copied()
        .ok_or_else(|| corrupt(format!("control type index {idx} out of range")))
}

fn enc_control_id(e: &mut Enc, it: &mut Interner, cid: &ControlId) {
    e.str(it, &cid.primary);
    enc_control_type(e, cid.control_type);
    e.str(it, &cid.ancestor_path);
}

fn dec_control_id(d: &mut Dec, strings: &[String]) -> StoreResult<ControlId> {
    let primary = d.str(strings)?.to_string();
    let control_type = dec_control_type(d)?;
    let ancestor_path = d.str(strings)?.to_string();
    Ok(ControlId { primary, control_type, ancestor_path })
}

pub fn enc_sigs(e: &mut Enc, it: &mut Interner, sigs: &[WindowSig]) {
    e.len(sigs.len());
    for s in sigs {
        e.u64(s.digest[0]);
        e.u64(s.digest[1]);
        e.bool(s.modal);
        e.str(it, &s.root_name);
    }
}

pub fn dec_sigs(d: &mut Dec, strings: &[String]) -> StoreResult<Vec<WindowSig>> {
    let n = d.len(21)?;
    let mut sigs = Vec::with_capacity(n);
    for _ in 0..n {
        let digest = [d.u64()?, d.u64()?];
        let modal = d.bool()?;
        let root_name = d.str(strings)?.to_string();
        sigs.push(WindowSig { digest, modal, root_name });
    }
    Ok(sigs)
}

pub fn enc_ung(e: &mut Enc, it: &mut Interner, g: &Ung) {
    let (nodes, succ, pred, root, edge_count) = g.raw_parts();
    e.len(nodes.len());
    for n in nodes {
        enc_control_id(e, it, &n.control);
        e.str(it, &n.name);
        enc_control_type(e, n.control_type);
        e.str(it, &n.help_text);
    }
    for adjacency in [succ, pred] {
        for list in adjacency {
            e.len(list.len());
            for &v in list {
                e.u32(v as u32);
            }
        }
    }
    e.u32(root as u32);
    e.u64(edge_count as u64);
}

pub fn dec_ung(d: &mut Dec, strings: &[String]) -> StoreResult<Ung> {
    let n = d.len(14)?;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let control = dec_control_id(d, strings)?;
        let name = d.str(strings)?.to_string();
        let control_type = dec_control_type(d)?;
        let help_text = d.str(strings)?.to_string();
        nodes.push(UngNode { control, name, control_type, help_text });
    }
    let dec_adjacency = |d: &mut Dec| -> StoreResult<Vec<Vec<usize>>> {
        let mut adj = Vec::with_capacity(n);
        for _ in 0..n {
            let m = d.len(4)?;
            let mut list = Vec::with_capacity(m);
            for _ in 0..m {
                list.push(d.u32()? as usize);
            }
            adj.push(list);
        }
        Ok(adj)
    };
    let succ = dec_adjacency(d)?;
    let pred = dec_adjacency(d)?;
    let root = d.u32()? as usize;
    let edge_count = d.u64()? as usize;
    Ung::from_raw_parts(nodes, succ, pred, root, edge_count).map_err(corrupt)
}

pub fn enc_rip_stats(e: &mut Enc, s: &RipStats) {
    for v in [
        s.clicks,
        s.snapshots,
        s.restarts,
        s.esc_recoveries,
        s.esc_presses,
        s.blocklisted,
        s.replay_failures,
        s.windows_seen,
        s.pool_hits,
        s.pool_misses,
        s.poison_recoveries,
        s.spec_published,
        s.spec_adopted,
        s.spec_wasted,
    ] {
        e.u64(v);
    }
}

pub fn dec_rip_stats(d: &mut Dec) -> StoreResult<RipStats> {
    Ok(RipStats {
        clicks: d.u64()?,
        snapshots: d.u64()?,
        restarts: d.u64()?,
        esc_recoveries: d.u64()?,
        esc_presses: d.u64()?,
        blocklisted: d.u64()?,
        replay_failures: d.u64()?,
        windows_seen: d.u64()?,
        pool_hits: d.u64()?,
        pool_misses: d.u64()?,
        poison_recoveries: d.u64()?,
        spec_published: d.u64()?,
        spec_adopted: d.u64()?,
        spec_wasted: d.u64()?,
    })
}

/// The journal's window-signature table: a rip's entries repeat a small
/// set of distinct [`WindowSig`]s across thousands of pre/post lists
/// (most explorations share the same surrounding windows), so the
/// JOURNAL section interns sigs and encodes the lists as id sequences —
/// the dominant size win of the binary format over JSON.
#[derive(Default)]
struct SigTable {
    sigs: Vec<WindowSig>,
    ids: std::collections::HashMap<(u64, u64, bool, String), u32>,
}

impl SigTable {
    fn id(&mut self, s: &WindowSig) -> u32 {
        let key = (s.digest[0], s.digest[1], s.modal, s.root_name.clone());
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = self.sigs.len() as u32;
        self.sigs.push(s.clone());
        self.ids.insert(key, id);
        id
    }
}

pub fn enc_journal_entries(e: &mut Enc, it: &mut Interner, entries: &[JournalEntry]) {
    // First pass: intern every sig so the table can be emitted up front.
    let mut table = SigTable::default();
    let ids: Vec<(Vec<u32>, Vec<u32>)> = entries
        .iter()
        .map(|entry| {
            (
                entry.pre.iter().map(|s| table.id(s)).collect(),
                entry.post.iter().map(|s| table.id(s)).collect(),
            )
        })
        .collect();
    enc_sigs(e, it, &table.sigs);
    e.len(entries.len());
    for (entry, (pre_ids, post_ids)) in entries.iter().zip(&ids) {
        e.len(entry.setup.len());
        for s in &entry.setup {
            e.str(it, s);
        }
        enc_control_id(e, it, &entry.cid);
        e.len(entry.path.len());
        for p in &entry.path {
            enc_control_id(e, it, p);
        }
        for list in [pre_ids, post_ids] {
            e.len(list.len());
            for &id in list {
                e.u32(id);
            }
        }
        e.len(entry.fresh.len());
        for &(w, off) in &entry.fresh {
            e.u32(w);
            e.u32(off);
        }
    }
}

pub fn dec_journal_entries(d: &mut Dec, strings: &[String]) -> StoreResult<Vec<JournalEntry>> {
    let table = dec_sigs(d, strings)?;
    let dec_sig_list = |d: &mut Dec| -> StoreResult<Vec<WindowSig>> {
        let n = d.len(4)?;
        let mut sigs = Vec::with_capacity(n);
        for _ in 0..n {
            let id = d.u32()? as usize;
            let sig = table.get(id).ok_or_else(|| {
                corrupt(format!("sig id {id} out of table range {}", table.len()))
            })?;
            sigs.push(sig.clone());
        }
        Ok(sigs)
    };
    let n = d.len(25)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let n_setup = d.len(4)?;
        let mut setup = Vec::with_capacity(n_setup);
        for _ in 0..n_setup {
            setup.push(d.str(strings)?.to_string());
        }
        let cid = dec_control_id(d, strings)?;
        let n_path = d.len(9)?;
        let mut path = Vec::with_capacity(n_path);
        for _ in 0..n_path {
            path.push(dec_control_id(d, strings)?);
        }
        let pre = dec_sig_list(d)?;
        let post = dec_sig_list(d)?;
        let n_fresh = d.len(8)?;
        let mut fresh = Vec::with_capacity(n_fresh);
        for _ in 0..n_fresh {
            fresh.push((d.u32()?, d.u32()?));
        }
        entries.push(JournalEntry { setup, cid, path, pre, post, fresh });
    }
    Ok(entries)
}

/// Node flag byte: bits 0–3 hold the four booleans, bits 4–5 the
/// `Option<ToggleState>`, bits 6–7 the `Option<bool>` expanded state.
fn enc_flags(p: &ControlProps) -> u8 {
    let mut f = 0u8;
    f |= p.enabled as u8;
    f |= (p.offscreen as u8) << 1;
    f |= (p.selected as u8) << 2;
    f |= (p.focusable as u8) << 3;
    f |= match p.toggle {
        None => 0,
        Some(ToggleState::Off) => 1,
        Some(ToggleState::On) => 2,
        Some(ToggleState::Indeterminate) => 3,
    } << 4;
    f |= match p.expanded {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    } << 6;
    f
}

/// Decoded flag byte: `(enabled, offscreen, selected, focusable, toggle,
/// expanded)`.
type Flags = (bool, bool, bool, bool, Option<ToggleState>, Option<bool>);

fn dec_flags(f: u8) -> StoreResult<Flags> {
    let toggle = match (f >> 4) & 0b11 {
        0 => None,
        1 => Some(ToggleState::Off),
        2 => Some(ToggleState::On),
        3 => Some(ToggleState::Indeterminate),
        _ => unreachable!(),
    };
    let expanded = match (f >> 6) & 0b11 {
        0 => None,
        1 => Some(false),
        2 => Some(true),
        b => return Err(corrupt(format!("invalid expanded bits {b}"))),
    };
    Ok((f & 1 != 0, f & 2 != 0, f & 4 != 0, f & 8 != 0, toggle, expanded))
}

fn enc_patterns(e: &mut Enc, set: &PatternSet) {
    let bits = set.iter().fold(0u64, |acc, p| acc | (1u64 << (p as u32)));
    e.u64(bits);
}

fn dec_patterns(d: &mut Dec) -> StoreResult<PatternSet> {
    let bits = d.u64()?;
    if bits >> PatternKind::ALL.len() != 0 {
        return Err(corrupt(format!("unknown pattern bits {bits:#x}")));
    }
    Ok(PatternKind::ALL.iter().copied().filter(|&p| bits & (1u64 << (p as u32)) != 0).collect())
}

pub fn enc_snapshot(e: &mut Enc, it: &mut Interner, snap: &Snapshot) {
    e.len(snap.len());
    for (_, node) in snap.iter() {
        let p = &node.props;
        e.u32(node.parent.map_or(u32::MAX, |v| v as u32));
        e.u32(node.window as u32);
        e.u64(node.runtime_id.0);
        e.str(it, &p.automation_id);
        e.str(it, &p.name);
        enc_control_type(e, p.control_type);
        e.str(it, &p.class_name);
        e.str(it, &p.help_text);
        enc_patterns(e, &p.patterns);
        e.u8(enc_flags(p));
        e.str(it, &p.value);
        e.i32(p.rect.x);
        e.i32(p.rect.y);
        e.i32(p.rect.w);
        e.i32(p.rect.h);
    }
    let ws = snap.windows();
    e.len(ws.len());
    for (i, &root) in ws.iter().enumerate() {
        e.u32(root as u32);
        e.bool(snap.window_is_modal(i));
    }
}

pub fn dec_snapshot(d: &mut Dec, strings: &[String]) -> StoreResult<Snapshot> {
    let n = d.len(46)?;
    let mut snap = Snapshot::new();
    let mut runtime_ids = Vec::with_capacity(n);
    for idx in 0..n {
        let parent = match d.u32()? {
            u32::MAX => None,
            p if (p as usize) < idx => Some(p as usize),
            p => return Err(corrupt(format!("node {idx} parent {p} not yet decoded"))),
        };
        let window = d.u32()? as usize;
        let runtime_id = d.u64()?;
        let automation_id = d.str(strings)?.to_string();
        let name = d.str(strings)?.to_string();
        let control_type = dec_control_type(d)?;
        let class_name = d.str(strings)?.to_string();
        let help_text = d.str(strings)?.to_string();
        let patterns = dec_patterns(d)?;
        let (enabled, offscreen, selected, focusable, toggle, expanded) = dec_flags(d.u8()?)?;
        let value = d.str(strings)?.to_string();
        let rect = Rect { x: d.i32()?, y: d.i32()?, w: d.i32()?, h: d.i32()? };
        let props = ControlProps {
            automation_id,
            name,
            control_type,
            class_name,
            help_text,
            patterns,
            enabled,
            offscreen,
            value,
            toggle,
            selected,
            expanded,
            rect,
            focusable,
        };
        let pushed = snap.push(props, parent, window);
        debug_assert_eq!(pushed, idx);
        runtime_ids.push(runtime_id);
    }
    for (idx, rt) in runtime_ids.into_iter().enumerate() {
        snap.set_runtime_id(idx, RuntimeId(rt));
    }
    let n_windows = d.len(5)?;
    for _ in 0..n_windows {
        let root = d.u32()? as usize;
        let modal = d.bool()?;
        if root >= snap.len() {
            return Err(corrupt(format!("window root {root} out of arena range {}", snap.len())));
        }
        if modal {
            snap.push_modal_window_root(root);
        } else {
            snap.push_window_root(root);
        }
    }
    Ok(snap)
}

pub fn enc_captures(e: &mut Enc, it: &mut Interner, captures: &[PooledCapture]) {
    e.len(captures.len());
    for c in captures {
        e.u64(c.model);
        e.u64(c.hash);
        e.len(c.trace.len());
        for &fp in &c.trace {
            e.u64(fp);
        }
        e.u64(c.hits);
        enc_snapshot(e, it, &c.snap);
    }
}

pub fn dec_captures(d: &mut Dec, strings: &[String]) -> StoreResult<Vec<PooledCapture>> {
    let n = d.len(36)?;
    let mut captures = Vec::with_capacity(n);
    for _ in 0..n {
        let model = d.u64()?;
        let hash = d.u64()?;
        let n_trace = d.len(8)?;
        let mut trace = Vec::with_capacity(n_trace);
        for _ in 0..n_trace {
            trace.push(d.u64()?);
        }
        let hits = d.u64()?;
        let snap = Arc::new(dec_snapshot(d, strings)?);
        captures.push(PooledCapture { model, hash, trace, snap, hits });
    }
    Ok(captures)
}
