//! The binary container format: framing, checksums, string interning,
//! and the primitive value codecs.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      8  b"DMISTORE"
//! version    4  FORMAT_VERSION
//! kind       1  artifact kind (rip = 1, captures = 2)
//! sections   4  section count
//! per section:
//!   tag      1
//!   len      8  payload byte length
//!   checksum 8  FNV-1a over the payload
//!   payload  len
//! ```
//!
//! Strings are interned: every section stores `u32` ids into a shared
//! string table carried in its own section (tag [`sec::STRINGS`]), which
//! is always decoded first. Office UNGs repeat a few hundred names across
//! thousands of nodes, journal paths, and snapshots — interning is most
//! of the codec's size win over the JSON path.
//!
//! Every read is bounds- and checksum-guarded: truncated, corrupt, or
//! wrong-version input surfaces a typed [`StoreError`], never a panic.

use std::collections::HashMap;
use std::fmt;

/// Current on-disk format version. Bump on any layout change; readers
/// refuse other versions with [`StoreError::UnsupportedVersion`] (see
/// `docs/persistence.md` for the compatibility rules).
pub const FORMAT_VERSION: u32 = 2;

/// File magic.
pub const MAGIC: [u8; 8] = *b"DMISTORE";

/// Artifact kinds (the `kind` header byte).
pub mod kind {
    /// A stored rip: UNG + journal + pristine signature.
    pub const RIP: u8 = 1;
    /// A stored capture-pool export.
    pub const CAPTURES: u8 = 2;
}

/// Section tags.
pub mod sec {
    /// The interned string table (decoded before everything else).
    pub const STRINGS: u8 = 1;
    /// Artifact metadata (app name, pristine signature, stats).
    pub const META: u8 = 2;
    /// The UNG graph.
    pub const UNG: u8 = 3;
    /// The exploration journal.
    pub const JOURNAL: u8 = 4;
    /// Pooled capture entries.
    pub const ENTRIES: u8 = 5;
}

/// Typed codec/store errors. The decoder's contract is total: any byte
/// stream produces either a value or one of these.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The magic bytes are wrong — not a store artifact.
    BadMagic,
    /// The artifact was written by an incompatible format version.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The artifact kind does not match what the caller asked to load.
    WrongKind {
        /// Kind byte expected for this load path.
        expected: u8,
        /// Kind byte found in the header.
        found: u8,
    },
    /// The input ended before a declared length was satisfied.
    Truncated {
        /// What was being read.
        context: &'static str,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// Structurally invalid input: checksum mismatch, out-of-range id,
    /// violated graph invariant, …
    Corrupt {
        /// Human-readable description of the violated invariant.
        message: String,
    },
    /// A warm-boot attestation failed: the stored pristine signature
    /// does not match the live application's, so serving the stored
    /// captures or journal would be unsound (e.g. a different app
    /// version).
    PristineMismatch {
        /// The store key the attestation was performed for.
        app: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a dmi-store artifact (bad magic)"),
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported format version {found} (supported: {FORMAT_VERSION})")
            }
            StoreError::WrongKind { expected, found } => {
                write!(f, "wrong artifact kind {found} (expected {expected})")
            }
            StoreError::Truncated { context, needed, remaining } => {
                write!(
                    f,
                    "truncated input reading {context}: needed {needed} bytes, {remaining} remain"
                )
            }
            StoreError::Corrupt { message } => write!(f, "corrupt artifact: {message}"),
            StoreError::PristineMismatch { app } => {
                write!(f, "pristine signature mismatch for `{app}`: stored artifacts were captured against a different launch image")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Shorthand result type.
pub type StoreResult<T> = Result<T, StoreError>;

pub(crate) fn corrupt(message: impl Into<String>) -> StoreError {
    StoreError::Corrupt { message: message.into() }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The shared string interner: first occurrence assigns the next id.
#[derive(Default)]
pub struct Interner {
    strings: Vec<String>,
    ids: HashMap<String, u32>,
}

impl Interner {
    fn id(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.ids.insert(s.to_string(), id);
        id
    }
}

/// One section's encoder: primitive writers over a growable buffer, with
/// strings routed through the artifact-wide [`Interner`].
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A length-prefixed list header.
    pub fn len(&mut self, n: usize) {
        self.u32(n as u32);
    }

    /// An interned string reference.
    pub fn str(&mut self, interner: &mut Interner, s: &str) {
        self.u32(interner.id(s));
    }
}

/// One section's decoder: a cursor over the payload with total,
/// bounds-checked reads.
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Dec<'a> {
    pub fn new(bytes: &'a [u8], context: &'static str) -> Dec<'a> {
        Dec { bytes, pos: 0, context }
    }

    fn take(&mut self, n: usize) -> StoreResult<&'a [u8]> {
        let remaining = self.bytes.len() - self.pos;
        if n > remaining {
            return Err(StoreError::Truncated { context: self.context, needed: n, remaining });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> StoreResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> StoreResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(corrupt(format!("invalid bool byte {b} in {}", self.context))),
        }
    }

    pub fn u32(&mut self) -> StoreResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> StoreResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn i32(&mut self) -> StoreResult<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// A list length, sanity-bounded by what the remaining payload could
    /// possibly hold (`min_elem_bytes` per element) so a corrupt length
    /// cannot trigger a huge allocation.
    pub fn len(&mut self, min_elem_bytes: usize) -> StoreResult<usize> {
        let n = self.u32()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(corrupt(format!(
                "implausible length {n} in {} ({remaining} payload bytes remain)",
                self.context
            )));
        }
        Ok(n)
    }

    /// An interned string reference, resolved against the decoded table.
    pub fn str<'s>(&mut self, strings: &'s [String]) -> StoreResult<&'s str> {
        let id = self.u32()? as usize;
        strings
            .get(id)
            .map(String::as_str)
            .ok_or_else(|| corrupt(format!("string id {id} out of table range {}", strings.len())))
    }

    /// Asserts the payload was fully consumed (catches format drift).
    pub fn finish(self) -> StoreResult<()> {
        if self.pos != self.bytes.len() {
            return Err(corrupt(format!(
                "{} bytes of trailing garbage in {}",
                self.bytes.len() - self.pos,
                self.context
            )));
        }
        Ok(())
    }
}

/// Whole-artifact writer: collects tagged sections, then frames them with
/// the header, the string table, and per-section checksums.
pub struct ArtifactWriter {
    kind: u8,
    pub interner: Interner,
    sections: Vec<(u8, Vec<u8>)>,
}

impl ArtifactWriter {
    pub fn new(kind: u8) -> ArtifactWriter {
        ArtifactWriter { kind, interner: Interner::default(), sections: Vec::new() }
    }

    /// Adds a finished section.
    pub fn section(&mut self, tag: u8, enc: Enc) {
        self.sections.push((tag, enc.buf));
    }

    /// Serializes the artifact.
    pub fn finish(self) -> Vec<u8> {
        // The string table becomes its own section, emitted first so the
        // reader can resolve references while decoding the rest.
        let mut table = Vec::new();
        table.extend_from_slice(&(self.interner.strings.len() as u32).to_le_bytes());
        for s in &self.interner.strings {
            table.extend_from_slice(&(s.len() as u32).to_le_bytes());
            table.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(self.kind);
        out.extend_from_slice(&((self.sections.len() + 1) as u32).to_le_bytes());
        let mut emit = |tag: u8, payload: &[u8]| {
            out.push(tag);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv(payload).to_le_bytes());
            out.extend_from_slice(payload);
        };
        emit(sec::STRINGS, &table);
        for (tag, payload) in &self.sections {
            emit(*tag, payload);
        }
        out
    }
}

/// Whole-artifact reader: validates the header, splits checksummed
/// sections, and decodes the string table.
pub struct ArtifactReader<'a> {
    pub strings: Vec<String>,
    sections: Vec<(u8, &'a [u8])>,
}

impl<'a> ArtifactReader<'a> {
    /// Parses and validates the container framing.
    pub fn new(bytes: &'a [u8], expected_kind: u8) -> StoreResult<ArtifactReader<'a>> {
        let mut d = Dec::new(bytes, "artifact header");
        let magic = d.take(8)?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = d.u32()?;
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let kind = d.u8()?;
        if kind != expected_kind {
            return Err(StoreError::WrongKind { expected: expected_kind, found: kind });
        }
        let n_sections = d.u32()? as usize;
        let mut sections = Vec::with_capacity(n_sections);
        for _ in 0..n_sections {
            let tag = d.u8()?;
            let len = d.u64()? as usize;
            let checksum = d.u64()?;
            let payload = d.take(len)?;
            if fnv(payload) != checksum {
                return Err(corrupt(format!("checksum mismatch in section {tag}")));
            }
            sections.push((tag, payload));
        }
        d.finish()?;

        // Decode the string table up front.
        let table = sections
            .iter()
            .find(|(t, _)| *t == sec::STRINGS)
            .ok_or_else(|| corrupt("missing string table section"))?
            .1;
        let mut d = Dec::new(table, "string table");
        let count = d.len(4)?;
        let mut strings = Vec::with_capacity(count);
        for _ in 0..count {
            let len = d.u32()? as usize;
            let raw = d.take(len)?;
            let s =
                std::str::from_utf8(raw).map_err(|_| corrupt("non-utf8 bytes in string table"))?;
            strings.push(s.to_string());
        }
        d.finish()?;
        Ok(ArtifactReader { strings, sections })
    }

    /// The payload of a required section.
    pub fn section(&self, tag: u8) -> StoreResult<&'a [u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| *p)
            .ok_or_else(|| corrupt(format!("missing section {tag}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_artifact() -> Vec<u8> {
        let mut w = ArtifactWriter::new(kind::RIP);
        let mut e = Enc::default();
        e.u64(42);
        e.str(&mut w.interner, "hello");
        e.str(&mut w.interner, "hello");
        e.str(&mut w.interner, "world");
        w.section(sec::META, e);
        w.finish()
    }

    #[test]
    fn frame_round_trips_and_interns() {
        let bytes = round_trip_artifact();
        let r = ArtifactReader::new(&bytes, kind::RIP).unwrap();
        assert_eq!(r.strings, ["hello", "world"]);
        let mut d = Dec::new(r.section(sec::META).unwrap(), "meta");
        assert_eq!(d.u64().unwrap(), 42);
        assert_eq!(d.str(&r.strings).unwrap(), "hello");
        assert_eq!(d.str(&r.strings).unwrap(), "hello");
        assert_eq!(d.str(&r.strings).unwrap(), "world");
        d.finish().unwrap();
    }

    #[test]
    fn bad_magic_and_versions_are_typed_errors() {
        let mut bytes = round_trip_artifact();
        bytes[0] ^= 0xFF;
        assert!(matches!(ArtifactReader::new(&bytes, kind::RIP), Err(StoreError::BadMagic)));

        let mut bytes = round_trip_artifact();
        bytes[8] = 99; // version field
        assert!(matches!(
            ArtifactReader::new(&bytes, kind::RIP),
            Err(StoreError::UnsupportedVersion { found: 99 })
        ));

        let bytes = round_trip_artifact();
        assert!(matches!(
            ArtifactReader::new(&bytes, kind::CAPTURES),
            Err(StoreError::WrongKind { expected: kind::CAPTURES, found: kind::RIP })
        ));
    }

    #[test]
    fn every_truncation_point_is_a_typed_error() {
        let bytes = round_trip_artifact();
        for cut in 0..bytes.len() {
            let err = ArtifactReader::new(&bytes[..cut], kind::RIP)
                .err()
                .unwrap_or_else(|| panic!("truncation at {cut} must fail"));
            assert!(
                matches!(err, StoreError::Truncated { .. } | StoreError::BadMagic),
                "unexpected error at cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let mut bytes = round_trip_artifact();
        let last = bytes.len() - 1; // inside the META payload
        bytes[last] ^= 0x01;
        match ArtifactReader::new(&bytes, kind::RIP) {
            Err(StoreError::Corrupt { message }) => assert!(message.contains("checksum")),
            Err(other) => panic!("expected checksum error, got {other:?}"),
            Ok(_) => panic!("corrupt payload must not parse"),
        }
    }
}
