//! Persistent storage for ripped UNGs and capture pools.
//!
//! This crate adds the third leg of the DMI lifecycle: after a UNG has
//! been ripped (`dmi-core`) and served (`dmi-agent`), it can now be
//! **saved** — together with its exploration journal and the session's
//! capture pool — and a later process can **load** it to warm-boot a
//! gateway or to run an *incremental re-rip* against a new build of the
//! application ([`rip_incremental`]).
//!
//! Three layers:
//!
//! - [`codec`]: the length-prefixed, checksummed, versioned binary
//!   container ([`FORMAT_VERSION`], `b"DMISTORE"` magic). Corrupt,
//!   truncated, or wrong-version input surfaces a typed [`StoreError`],
//!   never a panic.
//! - [`Store`]: the on-disk directory of artifacts, keyed by application
//!   name. Cross-process identity is attested *structurally*: every
//!   artifact embeds the app's pristine-state window signature
//!   ([`dmi_core::pristine_signature`]), and warm paths refuse stores
//!   whose signature does not match the live app
//!   ([`StoreError::PristineMismatch`]). The in-process
//!   `pristine_token` cannot serve here — it is an `Arc` address and
//!   therefore process-local.
//! - [`rip_incremental`] / [`record_rip`]: journal-driven re-rips that
//!   skip unchanged explorations while staying byte-identical to a cold
//!   rip of the new build (release-gated oracles in
//!   `tests/store.rs`).
//!
//! See `docs/persistence.md` for the format layout and compatibility
//! rules.

mod artifacts;
mod codec;

pub use codec::{StoreError, StoreResult, FORMAT_VERSION};

use codec::{kind, sec, ArtifactReader, ArtifactWriter, Dec, Enc};
use dmi_core::{IncrementalStats, RipConfig, RipJournal, RipStats, Ung, WindowSig};
use dmi_gui::{PooledCapture, Session};
use std::path::{Path, PathBuf};

/// Maximum pooled captures persisted per app. On save, lower-value
/// entries (by the same frequency × node-count retention score the
/// in-memory pool uses) are dropped first.
pub const STORE_CAPACITY: usize = 64;

/// A capture pool sized for recording: one rip generates thousands of
/// distinct action traces, so the serving-sized `CapturePool::shared()`
/// (64 entries) churns every capture out before the rip finishes and the
/// post-rip export would be an arbitrary tail. A recording pool holds
/// the whole rip, letting hit counts accumulate so the
/// [`STORE_CAPACITY`] cap applied at save keeps the genuinely hottest
/// entries. Attach it to the donor before [`record_rip`] /
/// [`export_captures`], and to the warmed session before
/// [`warm_session`].
pub fn recording_pool() -> std::sync::Arc<dmi_gui::CapturePool> {
    std::sync::Arc::new(dmi_gui::CapturePool::new(8192))
}

/// A persisted rip: the UNG, its exploration journal (fuel for
/// [`rip_incremental`]), the rip stats, and the structural identity of
/// the application it was ripped from.
#[derive(Debug)]
pub struct StoredRip {
    /// Application key (also the file stem).
    pub app: String,
    /// Pristine-state window signature of the ripped build.
    pub pristine: Vec<WindowSig>,
    /// The ripped graph.
    pub ung: Ung,
    /// Stats of the recording rip.
    pub stats: RipStats,
    /// Per-exploration journal for incremental confirmation.
    pub journal: RipJournal,
}

/// A persisted capture-pool export.
#[derive(Debug)]
pub struct StoredCaptures {
    /// Application key (also the file stem).
    pub app: String,
    /// Pristine-state window signature of the donor build.
    pub pristine: Vec<WindowSig>,
    /// Pooled captures, most-recently-used first (the pool's MRU order).
    pub entries: Vec<PooledCapture>,
}

/// Serializes a [`StoredRip`] to the binary format.
pub fn encode_rip(rip: &StoredRip) -> Vec<u8> {
    let _span = dmi_obs::span(dmi_obs::Cat::Store, "encode_rip", 0);
    let mut w = ArtifactWriter::new(kind::RIP);
    let mut meta = Enc::default();
    meta.str(&mut w.interner, &rip.app);
    artifacts::enc_sigs(&mut meta, &mut w.interner, &rip.pristine);
    artifacts::enc_rip_stats(&mut meta, &rip.stats);
    let mut ung = Enc::default();
    artifacts::enc_ung(&mut ung, &mut w.interner, &rip.ung);
    let mut journal = Enc::default();
    artifacts::enc_journal_entries(&mut journal, &mut w.interner, rip.journal.entries());
    w.section(sec::META, meta);
    w.section(sec::UNG, ung);
    w.section(sec::JOURNAL, journal);
    w.finish()
}

/// Deserializes a [`StoredRip`], validating framing, checksums, and
/// every structural invariant.
pub fn decode_rip(bytes: &[u8]) -> StoreResult<StoredRip> {
    let _span = dmi_obs::span(dmi_obs::Cat::Store, "decode_rip", 0);
    dmi_obs::tally("store.decoded_bytes", bytes.len() as u64);
    let r = ArtifactReader::new(bytes, kind::RIP)?;
    let mut meta = Dec::new(r.section(sec::META)?, "rip meta");
    let app = meta.str(&r.strings)?.to_string();
    let pristine = artifacts::dec_sigs(&mut meta, &r.strings)?;
    let stats = artifacts::dec_rip_stats(&mut meta)?;
    meta.finish()?;
    let mut ung = Dec::new(r.section(sec::UNG)?, "ung");
    let graph = artifacts::dec_ung(&mut ung, &r.strings)?;
    ung.finish()?;
    let mut journal = Dec::new(r.section(sec::JOURNAL)?, "journal");
    let entries = artifacts::dec_journal_entries(&mut journal, &r.strings)?;
    journal.finish()?;
    Ok(StoredRip { app, pristine, ung: graph, stats, journal: RipJournal::from_entries(entries) })
}

/// Serializes a [`StoredCaptures`] to the binary format.
pub fn encode_captures(caps: &StoredCaptures) -> Vec<u8> {
    let _span = dmi_obs::span(dmi_obs::Cat::Store, "encode_captures", 0);
    let mut w = ArtifactWriter::new(kind::CAPTURES);
    let mut meta = Enc::default();
    meta.str(&mut w.interner, &caps.app);
    artifacts::enc_sigs(&mut meta, &mut w.interner, &caps.pristine);
    let mut entries = Enc::default();
    artifacts::enc_captures(&mut entries, &mut w.interner, &caps.entries);
    w.section(sec::META, meta);
    w.section(sec::ENTRIES, entries);
    w.finish()
}

/// Deserializes a [`StoredCaptures`].
pub fn decode_captures(bytes: &[u8]) -> StoreResult<StoredCaptures> {
    let _span = dmi_obs::span(dmi_obs::Cat::Store, "decode_captures", 0);
    dmi_obs::tally("store.decoded_bytes", bytes.len() as u64);
    let r = ArtifactReader::new(bytes, kind::CAPTURES)?;
    let mut meta = Dec::new(r.section(sec::META)?, "captures meta");
    let app = meta.str(&r.strings)?.to_string();
    let pristine = artifacts::dec_sigs(&mut meta, &r.strings)?;
    meta.finish()?;
    let mut d = Dec::new(r.section(sec::ENTRIES)?, "capture entries");
    let entries = artifacts::dec_captures(&mut d, &r.strings)?;
    d.finish()?;
    Ok(StoredCaptures { app, pristine, entries })
}

/// Applies the persistence retention cap: keeps the [`STORE_CAPACITY`]
/// highest retention-score entries (the in-memory pool's frequency ×
/// node-count score), ties toward the more recent — exports are MRU
/// first. Returns the number evicted.
fn apply_store_capacity(entries: &mut Vec<PooledCapture>) -> usize {
    if entries.len() <= STORE_CAPACITY {
        return 0;
    }
    let evicted = entries.len() - STORE_CAPACITY;
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by_key(|&i| {
        let c = &entries[i];
        (std::cmp::Reverse((c.hits + 1) as u128 * c.snap.len().max(1) as u128), i)
    });
    let keep: std::collections::HashSet<usize> = order[..STORE_CAPACITY].iter().copied().collect();
    let mut i = 0;
    entries.retain(|_| {
        let kept = keep.contains(&i);
        i += 1;
        kept
    });
    evicted
}

/// An on-disk artifact store: one directory, one file per artifact,
/// keyed by application name (`{app}.rip.dmi`, `{app}.caps.dmi`).
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> StoreResult<Store> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Store { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, app: &str, suffix: &str) -> PathBuf {
        let stem: String =
            app.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
        self.root.join(format!("{stem}.{suffix}.dmi"))
    }

    /// Persists a rip; returns the serialized size in bytes.
    pub fn save_rip(&self, rip: &StoredRip) -> StoreResult<u64> {
        let _span = dmi_obs::span(dmi_obs::Cat::Store, "save_rip", 0);
        let bytes = encode_rip(rip);
        std::fs::write(self.path(&rip.app, "rip"), &bytes)?;
        dmi_obs::tally("store.saved_bytes", bytes.len() as u64);
        Ok(bytes.len() as u64)
    }

    /// Loads the rip stored for `app`.
    pub fn load_rip(&self, app: &str) -> StoreResult<StoredRip> {
        let _span = dmi_obs::span(dmi_obs::Cat::Store, "load_rip", 0);
        decode_rip(&std::fs::read(self.path(app, "rip"))?)
    }

    /// Persists a capture-pool export, applying the [`STORE_CAPACITY`]
    /// retention cap; returns the serialized size in bytes.
    pub fn save_captures(&self, caps: &StoredCaptures) -> StoreResult<u64> {
        let _span = dmi_obs::span(dmi_obs::Cat::Store, "save_captures", 0);
        let mut entries: Vec<PooledCapture> = caps.entries.clone();
        apply_store_capacity(&mut entries);
        let capped =
            StoredCaptures { app: caps.app.clone(), pristine: caps.pristine.clone(), entries };
        let bytes = encode_captures(&capped);
        std::fs::write(self.path(&caps.app, "caps"), &bytes)?;
        dmi_obs::tally("store.saved_bytes", bytes.len() as u64);
        Ok(bytes.len() as u64)
    }

    /// Loads the captures stored for `app`.
    pub fn load_captures(&self, app: &str) -> StoreResult<StoredCaptures> {
        let _span = dmi_obs::span(dmi_obs::Cat::Store, "load_captures", 0);
        decode_captures(&std::fs::read(self.path(app, "caps"))?)
    }
}

/// Rips `session` while recording a journal and packages the result for
/// persistence. The pristine signature is taken *after* the rip (the
/// session restarts either way, so the graph is unaffected).
pub fn record_rip(app: &str, session: &mut Session, config: &RipConfig) -> StoredRip {
    let (ung, stats, journal) = dmi_core::rip_journaled(session, config);
    let pristine = dmi_core::pristine_signature(session);
    StoredRip { app: app.to_string(), pristine, ung, stats, journal }
}

/// Packages the session's current capture-pool contents for persistence.
pub fn export_captures(app: &str, session: &mut Session) -> StoredCaptures {
    let entries = session.export_pool_captures();
    let pristine = dmi_core::pristine_signature(session);
    StoredCaptures { app: app.to_string(), pristine, entries }
}

/// Warm-boots `session`'s capture pool from the store.
///
/// The stored pristine signature must match the live application's
/// ([`StoreError::PristineMismatch`] otherwise) — a new build invalidates
/// pooled captures, since replayed traces may now produce different
/// trees. Entries recorded under a different capture model (seed or
/// instability profile) are skipped. Returns the number of captures
/// imported.
pub fn warm_session(store: &Store, app: &str, session: &mut Session) -> StoreResult<usize> {
    let stored = store.load_captures(app)?;
    let Some((_, model)) = session.pool_identity() else {
        return Ok(0);
    };
    let live = dmi_core::pristine_signature(session);
    if live != stored.pristine {
        return Err(StoreError::PristineMismatch { app: app.to_string() });
    }
    let entries: Vec<PooledCapture> =
        stored.entries.into_iter().filter(|c| c.model == model).collect();
    Ok(session.import_pool_captures(entries))
}

/// Incrementally re-rips `session` against a stored prior rip: journaled
/// explorations whose window signatures still match are confirmed from
/// the journal instead of re-diffed, while the full exploration sequence
/// (and therefore the resulting UNG) stays byte-identical to a cold rip.
///
/// Unlike [`warm_session`], this deliberately does **not** require a
/// pristine-signature match — re-ripping a *changed* build is the whole
/// point; confirmation is decided per-exploration.
pub fn rip_incremental(
    session: &mut Session,
    config: &RipConfig,
    prior: &StoredRip,
) -> (Ung, RipStats, IncrementalStats) {
    dmi_core::rip_incremental(session, config, &prior.journal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmi_apps::AppKind;

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!("dmi-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    #[test]
    fn rip_artifact_round_trips_byte_identically() {
        let mut s = Session::new(AppKind::Word.launch_small());
        let stored = record_rip("Word", &mut s, &RipConfig::office("Word"));
        let store = temp_store("rip");
        let bytes = store.save_rip(&stored).unwrap();
        assert!(bytes > 0);
        let loaded = store.load_rip("Word").unwrap();
        assert_eq!(loaded.app, "Word");
        assert_eq!(loaded.pristine, stored.pristine);
        assert_eq!(
            serde_json::to_string(&loaded.ung).unwrap(),
            serde_json::to_string(&stored.ung).unwrap(),
            "UNG must round-trip byte-identically"
        );
        assert_eq!(loaded.journal.entries(), stored.journal.entries());
        assert_eq!(loaded.stats.clicks, stored.stats.clicks);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn binary_encoding_is_smaller_than_json() {
        let mut s = Session::new(AppKind::Word.launch_small());
        let stored = record_rip("Word", &mut s, &RipConfig::office("Word"));
        let binary = encode_rip(&stored).len();
        let json = serde_json::to_string(&stored.ung).unwrap().len();
        // The binary artifact additionally carries the journal and stats,
        // yet interning keeps it below the UNG's JSON alone.
        assert!(binary < json, "binary {binary} bytes should beat UNG JSON {json} bytes");
    }

    #[test]
    fn captures_round_trip_and_warm_boot_is_attested() {
        let mut s = Session::new(AppKind::Word.launch_small());
        s.set_capture_pool(Some(recording_pool()));
        let _ = dmi_core::ripper::rip(&mut s, &RipConfig::office("Word"));
        let caps = export_captures("Word", &mut s);
        assert!(!caps.entries.is_empty(), "a rip must leave pooled captures");
        let store = temp_store("caps");
        store.save_captures(&caps).unwrap();

        // Same build: captures import and dedup against an empty pool.
        let mut warm = Session::new(AppKind::Word.launch_small());
        warm.set_capture_pool(Some(recording_pool()));
        let imported = warm_session(&store, "Word", &mut warm).unwrap();
        assert!(imported > 0);

        // Different build: structurally refused.
        let mut other = Session::new(AppKind::Word.launch_small_version(1));
        other.set_capture_pool(Some(recording_pool()));
        match warm_session(&store, "Word", &mut other) {
            Err(StoreError::PristineMismatch { app }) => assert_eq!(app, "Word"),
            Err(e) => panic!("expected PristineMismatch, got {e}"),
            Ok(n) => panic!("expected PristineMismatch, imported {n}"),
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn store_capacity_evicts_lowest_value_entries_first() {
        let mut donor = Session::new(AppKind::Word.launch_small());
        donor.set_capture_pool(Some(recording_pool()));
        let _ = dmi_core::ripper::rip(&mut donor, &RipConfig::office("Word"));
        let seed = donor.export_pool_captures();
        assert!(!seed.is_empty());
        // Synthesize > STORE_CAPACITY entries with distinct hashes; give
        // index 0 a huge hit count so it must survive.
        let mut entries = Vec::new();
        for i in 0..(STORE_CAPACITY + 8) {
            let mut c = seed[i % seed.len()].clone();
            c.hash = c.hash.wrapping_add(i as u64);
            c.hits = if i == 0 { 1_000_000 } else { 0 };
            entries.push(c);
        }
        let evicted = apply_store_capacity(&mut entries);
        assert_eq!(evicted, 8);
        assert_eq!(entries.len(), STORE_CAPACITY);
        assert!(entries.iter().any(|c| c.hits == 1_000_000), "hot entry must be retained");
    }
}
