//! Excel tasks: tabular editing, conditional formatting, sorting, panes.

use crate::verify::excel;
use dmi_agent::AgentTask;
use dmi_apps::model::sheet::Addr;
use dmi_apps::AppKind;
use dmi_llm::{GuiStep, PlanMutation, PlanStep, TargetQuery, TaskPlan, VisitTarget};

fn q(name: &str) -> TargetQuery {
    TargetQuery::name(name)
}

fn qu(name: &str, under: &str) -> TargetQuery {
    TargetQuery::under(name, under)
}

fn cell(s: &dmi_gui::Session, addr: &str) -> dmi_apps::model::sheet::Cell {
    excel(s).sheet.cell(Addr::parse(addr).expect("valid addr"))
}

/// The nine Excel scenarios.
pub fn tasks() -> Vec<AgentTask> {
    vec![
        AgentTask {
            id: "excel-set-b2".into(),
            app: AppKind::Excel,
            description: "Set cell F2 to 500.".into(),
            setup: None,
            verify: |s| cell(s, "F2").value == "500",
            plan: TaskPlan {
                dmi: vec![PlanStep::Visit(vec![
                    VisitTarget::input_enter(q("Name Box"), "F2"),
                    VisitTarget::input_enter(qu("Formula Bar", "Formula Bar Area"), "500"),
                ])],
                gui: vec![
                    GuiStep::ClickAndType { target: q("Name Box"), text: "F2".into() },
                    GuiStep::Press("Enter".into()),
                    GuiStep::ClickAndType { target: q("Formula Bar"), text: "500".into() },
                    GuiStep::Press("Enter".into()),
                ],
            },
            mutations: vec![
                PlanMutation::DropLast,
                PlanMutation::ReplaceText { from: "F2".into(), to: "F3".into() },
            ],
        },
        AgentTask {
            id: "excel-fill-yellow".into(),
            app: AppKind::Excel,
            description: "Fill the range A1:B2 with yellow.".into(),
            setup: None,
            verify: |s| {
                cell(s, "A1").fill.as_deref() == Some("Yellow")
                    && cell(s, "B2").fill.as_deref() == Some("Yellow")
                    && cell(s, "A3").fill.is_none()
                    && cell(s, "C3").fill.is_none()
            },
            plan: TaskPlan {
                dmi: vec![PlanStep::Visit(vec![
                    VisitTarget::input_enter(q("Name Box"), "A1:B2"),
                    VisitTarget::click(qu("Yellow", "Fill Color")),
                ])],
                gui: vec![
                    GuiStep::ClickAndType { target: q("Name Box"), text: "A1:B2".into() },
                    GuiStep::Press("Enter".into()),
                    GuiStep::Click(q("Fill Color")),
                    GuiStep::Click(qu("Yellow", "Fill Color")),
                ],
            },
            mutations: vec![
                PlanMutation::ReplaceTarget { from: "Yellow".into(), to: "Gold".into() },
                PlanMutation::ReplaceText { from: "A1:B2".into(), to: "A1:B3".into() },
            ],
        },
        AgentTask {
            id: "excel-cond-less-than".into(),
            app: AppKind::Excel,
            description: "Highlight cells in C1:C10 with values less than 10 using a \
                          conditional formatting rule."
                .into(),
            setup: None,
            verify: |s| {
                let sheet = &excel(s).sheet;
                sheet.cond_rules.len() == 1
                    && sheet.cond_rules[0].kind == "less_than"
                    && (sheet.cond_rules[0].threshold - 10.0).abs() < 1e-9
            },
            plan: TaskPlan {
                dmi: vec![
                    PlanStep::Visit(vec![VisitTarget::input_enter(q("Name Box"), "C1:C10")]),
                    PlanStep::Visit(vec![
                        VisitTarget::input_enter(qu("Format cells that are", "Less Than"), "10"),
                        VisitTarget::click(qu("Apply Rule", "Less Than")),
                        VisitTarget::click(qu("OK", "Less Than")),
                    ]),
                ],
                gui: vec![
                    GuiStep::ClickAndType { target: q("Name Box"), text: "C1:C10".into() },
                    GuiStep::Press("Enter".into()),
                    GuiStep::Click(q("Conditional Formatting")),
                    GuiStep::Click(q("Highlight Cells Rules")),
                    GuiStep::Click(q("Less Than...")),
                    GuiStep::ClickAndType { target: q("Format cells that are"), text: "10".into() },
                    GuiStep::Press("Enter".into()),
                    GuiStep::Click(q("Apply Rule")),
                    GuiStep::Click(q("OK")),
                ],
            },
            mutations: vec![
                PlanMutation::DropStepWith { name: "Apply Rule".into() },
                PlanMutation::ReplaceText { from: "10".into(), to: "100".into() },
            ],
        },
        AgentTask {
            id: "excel-sort-units".into(),
            app: AppKind::Excel,
            description: "Sort the table by the Units column (C), smallest to largest.".into(),
            setup: None,
            verify: |s| excel(s).sheet.last_sort == Some((2, true)),
            plan: TaskPlan {
                dmi: vec![
                    PlanStep::Visit(vec![VisitTarget::input_enter(q("Name Box"), "C1")]),
                    PlanStep::Visit(vec![VisitTarget::click(qu("Sort A to Z", "Sort & Filter"))]),
                ],
                gui: vec![
                    GuiStep::ClickAndType { target: q("Name Box"), text: "C1".into() },
                    GuiStep::Press("Enter".into()),
                    GuiStep::Click(q("Sort & Filter")),
                    GuiStep::Click(q("Sort A to Z")),
                ],
            },
            mutations: vec![
                PlanMutation::ReplaceTarget {
                    from: "Sort A to Z".into(),
                    to: "Sort Z to A".into(),
                },
                PlanMutation::ReplaceText { from: "C1".into(), to: "D1".into() },
            ],
        },
        AgentTask {
            id: "excel-freeze-top-row".into(),
            app: AppKind::Excel,
            description: "Freeze the top row of the sheet.".into(),
            setup: None,
            verify: |s| excel(s).sheet.frozen_rows == 1 && excel(s).sheet.frozen_cols == 0,
            plan: TaskPlan {
                dmi: vec![PlanStep::Visit(vec![VisitTarget::click(qu(
                    "Freeze Top Row",
                    "Freeze Panes",
                ))])],
                gui: vec![
                    GuiStep::Click(q("View")),
                    GuiStep::Click(q("Freeze Panes")),
                    GuiStep::Click(q("Freeze Top Row")),
                ],
            },
            mutations: vec![PlanMutation::ReplaceTarget {
                from: "Freeze Top Row".into(),
                to: "Freeze First Column".into(),
            }],
        },
        AgentTask {
            id: "excel-percent-format".into(),
            app: AppKind::Excel,
            description: "Format the range D1:D10 as Percentage.".into(),
            setup: None,
            verify: |s| {
                cell(s, "D2").number_format.as_deref() == Some("Percentage")
                    && cell(s, "D9").number_format.as_deref() == Some("Percentage")
            },
            plan: TaskPlan {
                dmi: vec![PlanStep::Visit(vec![
                    VisitTarget::input_enter(q("Name Box"), "D1:D10"),
                    VisitTarget::click(qu("Percentage", "Number Format")),
                ])],
                gui: vec![
                    GuiStep::ClickAndType { target: q("Name Box"), text: "D1:D10".into() },
                    GuiStep::Press("Enter".into()),
                    GuiStep::Click(q("Number Format")),
                    GuiStep::Click(qu("Percentage", "Number Format")),
                ],
            },
            mutations: vec![PlanMutation::ReplaceTarget {
                from: "Percentage".into(),
                to: "Currency".into(),
            }],
        },
        AgentTask {
            id: "excel-rename-sheet".into(),
            app: AppKind::Excel,
            description: "Rename the worksheet to 'Budget'.".into(),
            setup: None,
            verify: |s| excel(s).sheet.name == "Budget",
            plan: TaskPlan {
                dmi: vec![PlanStep::Visit(vec![
                    VisitTarget::input_enter(q("Sheet name"), "Budget"),
                    VisitTarget::click(qu("OK", "Rename Sheet")),
                ])],
                gui: vec![
                    GuiStep::Click(q("Format")),
                    GuiStep::Click(q("Rename Sheet")),
                    GuiStep::ClickAndType { target: q("Sheet name"), text: "Budget".into() },
                    GuiStep::Press("Enter".into()),
                    GuiStep::Click(q("OK")),
                ],
            },
            mutations: vec![
                PlanMutation::ReplaceText { from: "Budget".into(), to: "Budget2".into() },
                PlanMutation::DropLast,
            ],
        },
        AgentTask {
            id: "excel-autosum-units".into(),
            app: AppKind::Excel,
            description: "Use AutoSum to total the Units column into C11.".into(),
            setup: None,
            verify: |s| cell(s, "C11").value == "320",
            plan: TaskPlan {
                dmi: vec![PlanStep::Visit(vec![
                    VisitTarget::input_enter(q("Name Box"), "C11"),
                    VisitTarget::click(qu("Sum", "AutoSum")),
                ])],
                gui: vec![
                    GuiStep::ClickAndType { target: q("Name Box"), text: "C11".into() },
                    GuiStep::Press("Enter".into()),
                    GuiStep::Click(q("AutoSum")),
                    GuiStep::Click(qu("Sum", "AutoSum")),
                ],
            },
            mutations: vec![
                PlanMutation::ReplaceTarget { from: "Sum".into(), to: "Average".into() },
                PlanMutation::ReplaceText { from: "C11".into(), to: "C12".into() },
            ],
        },
        AgentTask {
            id: "excel-read-revenue".into(),
            app: AppKind::Excel,
            description: "Find the largest Revenue value in the table and record it in F5.".into(),
            setup: None,
            verify: |s| cell(s, "F5").value == "5000",
            plan: TaskPlan {
                dmi: vec![
                    // Observation round: read the Revenue column through
                    // get_texts (no pixel parsing).
                    PlanStep::ObserveTexts {
                        names: vec!["D2".into(), "D3".into(), "D4".into(), "D5".into()],
                    },
                    PlanStep::Visit(vec![
                        VisitTarget::input_enter(q("Name Box"), "F5"),
                        VisitTarget::input_enter(qu("Formula Bar", "Formula Bar Area"), "5000"),
                    ]),
                ],
                gui: vec![
                    GuiStep::ClickAndType { target: q("Name Box"), text: "F5".into() },
                    GuiStep::Press("Enter".into()),
                    GuiStep::ClickAndType { target: q("Formula Bar"), text: "5000".into() },
                    GuiStep::Press("Enter".into()),
                ],
            },
            mutations: vec![
                // A visual misread of the grid: plausible wrong maximum.
                PlanMutation::ReplaceText { from: "5000".into(), to: "3500".into() },
                PlanMutation::DropLast,
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_excel_tasks() {
        assert_eq!(tasks().len(), 9);
        assert!(tasks().iter().all(|t| t.app == AppKind::Excel));
    }

    #[test]
    fn autosum_expectation_matches_seeded_data() {
        // 30+4+100+55+12+70+8+41 = 320 from the seeded table.
        let t = tasks().into_iter().find(|t| t.id == "excel-autosum-units").unwrap();
        let s = t.launch_small();
        let sheet = &excel(&s).sheet;
        let total: i64 = (1..=8)
            .filter_map(|r| sheet.cell(Addr { row: r, col: 2 }).value.parse::<i64>().ok())
            .sum();
        assert_eq!(total, 320);
    }
}
