//! The OSWorld-W-like benchmark suite (§5.1): 27 single-app scenarios —
//! 9 each for Word, Excel, and PowerPoint — with programmatic setup,
//! model-state verifiers (the role of OSWorld's getter scripts), oracle
//! plans in both DMI and GUI lowerings, and the plausible-but-wrong plan
//! mutations error injection draws from (§5.6 failure flavours).

pub mod excel_suite;
pub mod ppt_suite;
pub mod verify;
pub mod word_suite;

use dmi_agent::AgentTask;

/// The full 27-task suite, Word then Excel then PowerPoint.
pub fn all_tasks() -> Vec<AgentTask> {
    let mut v = word_suite::tasks();
    v.extend(excel_suite::tasks());
    v.extend(ppt_suite::tasks());
    v
}

/// Looks up a task by id.
pub fn task_by_id(id: &str) -> Option<AgentTask> {
    all_tasks().into_iter().find(|t| t.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmi_apps::AppKind;

    #[test]
    fn suite_has_27_tasks_evenly_split() {
        let tasks = all_tasks();
        assert_eq!(tasks.len(), 27);
        for app in AppKind::ALL {
            let n = tasks.iter().filter(|t| t.app == app).count();
            assert_eq!(n, 9, "{app} should have 9 tasks");
        }
    }

    #[test]
    fn task_ids_are_unique() {
        let tasks = all_tasks();
        let mut ids: Vec<&str> = tasks.iter().map(|t| t.id.as_str()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 27);
    }

    #[test]
    fn every_task_has_plans_and_mutations() {
        for t in all_tasks() {
            assert!(!t.plan.dmi.is_empty(), "{} has no DMI plan", t.id);
            assert!(!t.plan.gui.is_empty(), "{} has no GUI plan", t.id);
            assert!(!t.mutations.is_empty(), "{} has no mutations", t.id);
            assert!(!t.description.is_empty());
        }
    }

    #[test]
    fn fresh_sessions_do_not_verify() {
        // No task may be pre-satisfied by the initial document state.
        for t in all_tasks() {
            let mut s = t.launch_small();
            if let Some(setup) = t.setup {
                setup(&mut s);
            }
            assert!(!(t.verify)(&s), "{} verifies before any action", t.id);
        }
    }

    #[test]
    fn task_lookup() {
        assert!(task_by_id("ppt-background-all").is_some());
        assert!(task_by_id("nope").is_none());
    }
}
