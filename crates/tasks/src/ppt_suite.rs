//! PowerPoint tasks: graphics, transitions, slide management — including
//! the paper's Table 1 running examples.

use crate::verify::ppt;
use dmi_agent::AgentTask;
use dmi_apps::AppKind;
use dmi_llm::{GuiStep, PlanMutation, PlanStep, TargetQuery, TaskPlan, VisitTarget};

fn q(name: &str) -> TargetQuery {
    TargetQuery::name(name)
}

fn qu(name: &str, under: &str) -> TargetQuery {
    TargetQuery::under(name, under)
}

/// The nine PowerPoint scenarios.
pub fn tasks() -> Vec<AgentTask> {
    vec![
        AgentTask {
            // Table 1, Task 1.
            id: "ppt-background-all".into(),
            app: AppKind::PowerPoint,
            description: "Make the background blue on all slides.".into(),
            setup: None,
            verify: |s| {
                ppt(s).deck.slides.iter().all(|sl| sl.background.as_deref() == Some("Blue"))
            },
            plan: TaskPlan {
                dmi: vec![PlanStep::Visit(vec![
                    VisitTarget::click(qu("Blue", "Fill Color")),
                    VisitTarget::click(q("Apply to All")),
                ])],
                gui: vec![
                    GuiStep::Click(q("Design")),
                    GuiStep::Click(q("Format Background")),
                    GuiStep::Click(q("Solid fill")),
                    GuiStep::Click(q("Fill Color")),
                    GuiStep::Click(qu("Blue", "Fill Color")),
                    GuiStep::Click(q("Apply to All")),
                ],
            },
            mutations: vec![
                PlanMutation::DropStepWith { name: "Apply to All".into() },
                PlanMutation::ReplaceTarget { from: "Blue".into(), to: "Dark Blue".into() },
            ],
        },
        AgentTask {
            id: "ppt-transition-fade-all".into(),
            app: AppKind::PowerPoint,
            description: "Apply the Fade transition to every slide.".into(),
            setup: None,
            verify: |s| {
                ppt(s).deck.slides.iter().all(|sl| sl.transition.as_deref() == Some("Fade"))
            },
            plan: TaskPlan {
                dmi: vec![PlanStep::Visit(vec![
                    VisitTarget::click(qu("Fade", "Transition Styles")),
                    VisitTarget::click(q("Apply To All")),
                ])],
                gui: vec![
                    GuiStep::Click(q("Transitions")),
                    GuiStep::Click(q("Transition Styles")),
                    GuiStep::Click(qu("Fade", "Transition Styles")),
                    GuiStep::Click(q("Apply To All")),
                ],
            },
            mutations: vec![
                PlanMutation::DropStepWith { name: "Apply To All".into() },
                PlanMutation::ReplaceTarget { from: "Fade".into(), to: "Push".into() },
            ],
        },
        AgentTask {
            id: "ppt-notes-slide1".into(),
            app: AppKind::PowerPoint,
            description: "Add the speaker note 'Thank the team' to the first slide.".into(),
            setup: None,
            verify: |s| ppt(s).deck.slides[0].notes == "Thank the team",
            plan: TaskPlan {
                dmi: vec![PlanStep::Visit(vec![VisitTarget::input_enter(
                    q("Notes"),
                    "Thank the team",
                )])],
                gui: vec![
                    GuiStep::ClickAndType { target: q("Notes"), text: "Thank the team".into() },
                    GuiStep::Press("Enter".into()),
                ],
            },
            mutations: vec![
                PlanMutation::ReplaceText {
                    from: "Thank the team".into(),
                    to: "Thank the tema".into(),
                },
                PlanMutation::DropLast,
            ],
        },
        AgentTask {
            id: "ppt-slide-size-standard".into(),
            app: AppKind::PowerPoint,
            description: "Change the slide size to Standard (4:3).".into(),
            setup: None,
            verify: |s| ppt(s).deck.slide_size == "Standard (4:3)",
            plan: TaskPlan {
                dmi: vec![PlanStep::Visit(vec![VisitTarget::click(qu(
                    "Standard (4:3)",
                    "Slide Size",
                ))])],
                gui: vec![
                    GuiStep::Click(q("Design")),
                    GuiStep::Click(q("Slide Size")),
                    GuiStep::Click(q("Standard (4:3)")),
                ],
            },
            mutations: vec![PlanMutation::DropLast],
        },
        AgentTask {
            id: "ppt-new-blank-slide".into(),
            app: AppKind::PowerPoint,
            description: "Add a new slide with the Blank layout.".into(),
            setup: None,
            verify: |s| ppt(s).deck.slides.last().is_some_and(|sl| sl.layout == "Blank"),
            plan: TaskPlan {
                dmi: vec![PlanStep::Visit(vec![VisitTarget::click(qu("Blank", "New Slide"))])],
                gui: vec![GuiStep::Click(q("New Slide")), GuiStep::Click(qu("Blank", "New Slide"))],
            },
            mutations: vec![PlanMutation::ReplaceTarget {
                from: "Blank".into(),
                to: "Two Content".into(),
            }],
        },
        AgentTask {
            id: "ppt-title-font-36".into(),
            app: AppKind::PowerPoint,
            description: "Set the title of slide 1 to font size 36.".into(),
            setup: None,
            verify: |s| (ppt(s).deck.slides[0].shapes[0].font_size - 36.0).abs() < 1e-9,
            plan: TaskPlan {
                dmi: vec![
                    PlanStep::StateSelectControls { names: vec!["title 1".into()] },
                    PlanStep::Visit(vec![VisitTarget::click(qu("36", "Font Size"))]),
                ],
                gui: vec![
                    GuiStep::Click(q("title 1")),
                    GuiStep::Click(q("Font Size")),
                    GuiStep::Click(qu("36", "Font Size")),
                ],
            },
            mutations: vec![
                PlanMutation::ReplaceTarget { from: "36".into(), to: "32".into() },
                PlanMutation::DropStepWith { name: "title 1".into() },
            ],
        },
        AgentTask {
            id: "ppt-picture-style".into(),
            app: AppKind::PowerPoint,
            description: "Apply Picture Style 3 to the image on slide 2.".into(),
            setup: None,
            verify: |s| {
                ppt(s).deck.slides[1]
                    .shapes
                    .iter()
                    .any(|sh| sh.kind == "image" && sh.style.as_deref() == Some("Picture Style 3"))
            },
            plan: TaskPlan {
                dmi: vec![
                    PlanStep::StateSelectControls { names: vec!["Slide 2".into()] },
                    PlanStep::StateSelectControls { names: vec!["image 2".into()] },
                    PlanStep::Visit(vec![VisitTarget::click(qu(
                        "Picture Style 3",
                        "Picture Quick Styles",
                    ))]),
                ],
                gui: vec![
                    GuiStep::Click(q("Slide 2")),
                    GuiStep::Click(q("image 2")),
                    GuiStep::Click(q("Picture Format")),
                    GuiStep::Click(q("Picture Quick Styles")),
                    GuiStep::Click(q("Picture Style 3")),
                ],
            },
            mutations: vec![
                PlanMutation::DropStepWith { name: "image 2".into() },
                PlanMutation::ReplaceTarget {
                    from: "Picture Style 3".into(),
                    to: "Picture Style 7".into(),
                },
            ],
        },
        AgentTask {
            id: "ppt-animate-title-zoom".into(),
            app: AppKind::PowerPoint,
            description: "Add the Zoom animation to the title on slide 1.".into(),
            setup: None,
            verify: |s| ppt(s).deck.slides[0].shapes[0].animation.as_deref() == Some("Zoom"),
            plan: TaskPlan {
                dmi: vec![
                    PlanStep::StateSelectControls { names: vec!["title 1".into()] },
                    PlanStep::Visit(vec![VisitTarget::click(qu("Zoom", "Animation Styles"))]),
                ],
                gui: vec![
                    GuiStep::Click(q("title 1")),
                    GuiStep::Click(q("Animations")),
                    GuiStep::Click(q("Animation Styles")),
                    GuiStep::Click(qu("Zoom", "Animation Styles")),
                ],
            },
            mutations: vec![
                PlanMutation::ReplaceTarget { from: "Zoom".into(), to: "Bounce".into() },
                PlanMutation::DropStepWith { name: "title 1".into() },
            ],
        },
        AgentTask {
            // Table 1, Task 2 flavour (slide panel instead of document).
            id: "ppt-scroll-panel-end".into(),
            app: AppKind::PowerPoint,
            description: "Scroll the slide panel to show the last slides.".into(),
            setup: None,
            verify: |s| {
                let a = ppt(s);
                s.app().tree().widget(a.thumbnails()).scroll_pos >= 80.0
            },
            plan: TaskPlan {
                dmi: vec![PlanStep::StateScrollbar {
                    surface: "Slide Panel Scroll Bar".into(),
                    percent: 100.0,
                }],
                // Iterative drag-observe loop (§2.1 Mismatch #2).
                gui: vec![
                    GuiStep::DragScrollbarTo {
                        name: "Slide Panel Scroll Bar".into(),
                        percent: 60.0,
                    },
                    GuiStep::DragScrollbarTo {
                        name: "Slide Panel Scroll Bar".into(),
                        percent: 88.0,
                    },
                    GuiStep::DragScrollbarTo {
                        name: "Slide Panel Scroll Bar".into(),
                        percent: 100.0,
                    },
                ],
            },
            mutations: vec![PlanMutation::PerturbNumber { delta: -60.0 }],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_ppt_tasks() {
        assert_eq!(tasks().len(), 9);
        assert!(tasks().iter().all(|t| t.app == AppKind::PowerPoint));
    }

    #[test]
    fn table1_task1_is_two_dmi_commands() {
        // The paper's visit(["Blue", "Apply to All"]) example.
        let t = tasks().into_iter().find(|t| t.id == "ppt-background-all").unwrap();
        match &t.plan.dmi[0] {
            PlanStep::Visit(v) => assert_eq!(v.len(), 2),
            other => panic!("{other:?}"),
        }
        // Imperative GUI needs 6 clicks for the same outcome (Table 1).
        assert_eq!(t.plan.gui.len(), 6);
    }
}
