//! Verifier helpers: typed access to the app models behind a session.

use dmi_apps::{ExcelApp, PowerPointApp, WordApp};
use dmi_gui::Session;

/// The Word model behind a session (panics on the wrong app).
pub fn word(s: &Session) -> &WordApp {
    s.app().as_any().downcast_ref::<WordApp>().expect("session is not Word")
}

/// The Excel model behind a session.
pub fn excel(s: &Session) -> &ExcelApp {
    s.app().as_any().downcast_ref::<ExcelApp>().expect("session is not Excel")
}

/// The PowerPoint model behind a session.
pub fn ppt(s: &Session) -> &PowerPointApp {
    s.app().as_any().downcast_ref::<PowerPointApp>().expect("session is not PowerPoint")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmi_apps::AppKind;

    #[test]
    fn downcasts_work() {
        let s = Session::new(AppKind::Word.launch_small());
        assert_eq!(word(&s).doc.paragraphs.len(), 12);
        let s = Session::new(AppKind::Excel.launch_small());
        assert_eq!(excel(&s).sheet.rows, 12);
        let s = Session::new(AppKind::PowerPoint.launch_small());
        assert_eq!(ppt(&s).deck.slides.len(), 5);
    }

    #[test]
    #[should_panic(expected = "not Word")]
    fn wrong_app_panics() {
        let s = Session::new(AppKind::Excel.launch_small());
        let _ = word(&s);
    }
}
