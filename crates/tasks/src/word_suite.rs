//! Word tasks: text editing, formatting, find & replace, page setup.

use crate::verify::word;
use dmi_agent::AgentTask;
use dmi_apps::AppKind;
use dmi_llm::{GuiStep, PlanMutation, PlanStep, TargetQuery, TaskPlan, VisitTarget};

fn q(name: &str) -> TargetQuery {
    TargetQuery::name(name)
}

fn qu(name: &str, under: &str) -> TargetQuery {
    TargetQuery::under(name, under)
}

/// The nine Word scenarios.
pub fn tasks() -> Vec<AgentTask> {
    vec![
        AgentTask {
            id: "word-bold-range".into(),
            app: AppKind::Word,
            description: "Make paragraphs 2 through 4 bold.".into(),
            setup: None,
            verify: |s| {
                let d = &word(s).doc;
                d.paragraphs[2].format.bold
                    && d.paragraphs[3].format.bold
                    && d.paragraphs[4].format.bold
                    && !d.paragraphs[1].format.bold
                    && !d.paragraphs[5].format.bold
            },
            plan: TaskPlan {
                dmi: vec![
                    PlanStep::StateSelectLines { surface: "Document".into(), start: 2, end: 4 },
                    PlanStep::Visit(vec![VisitTarget::click(qu("Bold", "Font"))]),
                ],
                gui: vec![
                    GuiStep::DragSelectLines { surface: "Document".into(), start: 2, end: 4 },
                    GuiStep::Click(qu("Bold", "Font")),
                ],
            },
            mutations: vec![
                PlanMutation::PerturbNumber { delta: 1.0 },
                PlanMutation::ReplaceTarget { from: "Bold".into(), to: "Italic".into() },
            ],
        },
        AgentTask {
            id: "word-font-color-blue".into(),
            app: AppKind::Word,
            description: "Set the font color of the first paragraph to blue.".into(),
            setup: None,
            verify: |s| {
                let d = &word(s).doc;
                d.paragraphs[0].format.color == "Blue" && d.paragraphs[1].format.color == "Black"
            },
            plan: TaskPlan {
                dmi: vec![
                    PlanStep::StateSelectLines { surface: "Document".into(), start: 0, end: 0 },
                    PlanStep::Visit(vec![VisitTarget::click(qu("Blue", "Font Color"))]),
                ],
                gui: vec![
                    GuiStep::DragSelectLines { surface: "Document".into(), start: 0, end: 0 },
                    GuiStep::Click(q("Font Color")),
                    GuiStep::Click(qu("Blue", "Font Color")),
                ],
            },
            mutations: vec![
                PlanMutation::ReplaceTarget { from: "Blue".into(), to: "Dark Blue".into() },
                PlanMutation::DropStepWith { name: "Document".into() },
            ],
        },
        AgentTask {
            id: "word-replace-all".into(),
            app: AppKind::Word,
            description: "Replace every occurrence of 'fox' with 'cat'.".into(),
            setup: None,
            verify: |s| {
                let d = &word(s).doc;
                d.last_replace_count > 0
                    && d.paragraphs.iter().all(|p| !p.text.contains("fox"))
                    && d.paragraphs.iter().any(|p| p.text.contains("cat"))
            },
            plan: TaskPlan {
                dmi: vec![PlanStep::Visit(vec![
                    VisitTarget::input_enter(q("Find what"), "fox"),
                    VisitTarget::input_enter(q("Replace with"), "cat"),
                    VisitTarget::click(qu("Replace All", "Find and Replace")),
                ])],
                gui: vec![
                    GuiStep::Click(qu("Replace", "Editing")),
                    GuiStep::ClickAndType { target: q("Find what"), text: "fox".into() },
                    GuiStep::Press("Enter".into()),
                    GuiStep::ClickAndType { target: q("Replace with"), text: "cat".into() },
                    GuiStep::Press("Enter".into()),
                    GuiStep::Click(q("Replace All")),
                ],
            },
            mutations: vec![
                PlanMutation::DropStepWith { name: "Replace All".into() },
                PlanMutation::ReplaceText { from: "fox".into(), to: "Fox".into() },
            ],
        },
        AgentTask {
            id: "word-margins-narrow".into(),
            app: AppKind::Word,
            description: "Switch the page margins to the Narrow preset.".into(),
            setup: None,
            verify: |s| word(s).doc.page.margins == (0.5, 0.5, 0.5, 0.5),
            plan: TaskPlan {
                dmi: vec![PlanStep::Visit(vec![VisitTarget::click(qu("Narrow", "Margins"))])],
                gui: vec![
                    GuiStep::Click(q("Layout")),
                    GuiStep::Click(q("Margins")),
                    GuiStep::Click(qu("Narrow", "Margins")),
                ],
            },
            mutations: vec![
                PlanMutation::ReplaceTarget { from: "Narrow".into(), to: "Moderate".into() },
                PlanMutation::DropLast,
            ],
        },
        AgentTask {
            id: "word-margin-top-2in".into(),
            app: AppKind::Word,
            description: "Set the top margin to exactly 2 inches.".into(),
            setup: None,
            verify: |s| (word(s).doc.page.margins.0 - 2.0).abs() < 1e-9,
            plan: TaskPlan {
                dmi: vec![PlanStep::Visit(vec![
                    VisitTarget::input_enter(qu("Top", "Page Setup"), "2"),
                    VisitTarget::click(qu("OK", "Page Setup")),
                ])],
                gui: vec![
                    GuiStep::Click(q("Layout")),
                    GuiStep::Click(q("Page Setup")),
                    GuiStep::ClickAndType { target: q("Top"), text: "2".into() },
                    GuiStep::Press("Enter".into()),
                    GuiStep::Click(q("OK")),
                ],
            },
            mutations: vec![
                PlanMutation::ReplaceTarget { from: "Top".into(), to: "Bottom".into() },
                PlanMutation::ReplaceText { from: "2".into(), to: "0.2".into() },
            ],
        },
        AgentTask {
            id: "word-watermark-draft".into(),
            app: AppKind::Word,
            description: "Add a DRAFT watermark to the document.".into(),
            setup: None,
            verify: |s| word(s).doc.watermark.as_deref().is_some_and(|w| w.contains("DRAFT")),
            plan: TaskPlan {
                dmi: vec![PlanStep::Visit(vec![VisitTarget::click(qu("DRAFT 1", "Watermark"))])],
                gui: vec![
                    GuiStep::Click(q("Design")),
                    GuiStep::Click(q("Watermark")),
                    GuiStep::Click(q("DRAFT 1")),
                ],
            },
            mutations: vec![
                PlanMutation::ReplaceTarget { from: "DRAFT 1".into(), to: "SAMPLE 1".into() },
                PlanMutation::DropLast,
            ],
        },
        AgentTask {
            id: "word-page-color-green".into(),
            app: AppKind::Word,
            description: "Set the page background color to green.".into(),
            setup: None,
            verify: |s| word(s).doc.page.background.as_deref() == Some("Green"),
            plan: TaskPlan {
                dmi: vec![PlanStep::Visit(vec![VisitTarget::click(qu("Green", "Page Color"))])],
                gui: vec![
                    GuiStep::Click(q("Design")),
                    GuiStep::Click(q("Page Color")),
                    GuiStep::Click(qu("Green", "Page Color")),
                ],
            },
            mutations: vec![
                // The merge-node hazard: same cell name under the wrong
                // picker changes the font, not the page.
                PlanMutation::RetargetUnder { name: "Green".into(), under: "Font Color".into() },
                PlanMutation::ReplaceTarget { from: "Green".into(), to: "Blue".into() },
            ],
        },
        AgentTask {
            id: "word-subscript-para3".into(),
            app: AppKind::Word,
            description: "Format the third paragraph as subscript.".into(),
            setup: None,
            verify: |s| {
                let a = word(s);
                a.doc.paragraphs[2].format.subscript && !a.find_subscript
            },
            plan: TaskPlan {
                dmi: vec![
                    PlanStep::StateSelectLines { surface: "Document".into(), start: 2, end: 2 },
                    PlanStep::Visit(vec![VisitTarget::click(qu("Subscript", "Font"))]),
                ],
                gui: vec![
                    GuiStep::DragSelectLines { surface: "Document".into(), start: 2, end: 2 },
                    GuiStep::Click(qu("Subscript", "Font")),
                ],
            },
            mutations: vec![
                // §5.6's exact example: the Find & Replace subscript applies
                // to the find pattern, not the selection.
                PlanMutation::RetargetUnder { name: "Subscript".into(), under: "Format".into() },
                PlanMutation::PerturbNumber { delta: 1.0 },
            ],
        },
        AgentTask {
            id: "word-scroll-end".into(),
            app: AppKind::Word,
            description: "Scroll the document to show the area close to the end.".into(),
            setup: None,
            verify: |s| {
                let a = word(s);
                s.app().tree().widget(a.doc_surface()).scroll_pos >= 80.0
            },
            plan: TaskPlan {
                dmi: vec![PlanStep::StateScrollbar {
                    surface: "Vertical Scroll Bar".into(),
                    percent: 90.0,
                }],
                // The imperative lowering is the §2.1 drag-observe loop:
                // coarse drag, observe, correct, observe, settle.
                gui: vec![
                    GuiStep::DragScrollbarTo { name: "Vertical Scroll Bar".into(), percent: 55.0 },
                    GuiStep::DragScrollbarTo { name: "Vertical Scroll Bar".into(), percent: 78.0 },
                    GuiStep::DragScrollbarTo { name: "Vertical Scroll Bar".into(), percent: 90.0 },
                ],
            },
            mutations: vec![PlanMutation::PerturbNumber { delta: -50.0 }],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_word_tasks() {
        assert_eq!(tasks().len(), 9);
        assert!(tasks().iter().all(|t| t.app == AppKind::Word));
    }

    #[test]
    fn scroll_task_is_table1_task2_shaped() {
        // One declarative state call replaces the drag-observe loop.
        let t = tasks().into_iter().find(|t| t.id == "word-scroll-end").unwrap();
        assert_eq!(t.plan.dmi.len(), 1);
        assert!(matches!(t.plan.dmi[0], PlanStep::StateScrollbar { .. }));
    }
}
