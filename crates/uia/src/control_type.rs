//! The 41 UIA control types.
//!
//! Windows UI Automation defines a closed set of 41 control types; the
//! paper's Insight #3 (§2.2) relies on this finiteness to bound the
//! interaction-abstraction problem. The set below mirrors the official
//! `UIA_*ControlTypeId` list.

use serde::{Deserialize, Serialize};

/// A UIA control type.
///
/// Every UI control exposed through the accessibility tree carries exactly
/// one control type. The variant order follows the UIA control type id
/// order; [`ControlType::ALL`] enumerates all 41.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ControlType {
    AppBar,
    Button,
    Calendar,
    CheckBox,
    ComboBox,
    Custom,
    DataGrid,
    DataItem,
    Document,
    Edit,
    Group,
    Header,
    HeaderItem,
    Hyperlink,
    Image,
    List,
    ListItem,
    Menu,
    MenuBar,
    MenuItem,
    Pane,
    ProgressBar,
    RadioButton,
    ScrollBar,
    SemanticZoom,
    Separator,
    Slider,
    Spinner,
    SplitButton,
    StatusBar,
    Tab,
    TabItem,
    Table,
    Text,
    Thumb,
    TitleBar,
    ToolBar,
    ToolTip,
    Tree,
    TreeItem,
    Window,
}

impl ControlType {
    /// All 41 control types, in UIA id order.
    pub const ALL: [ControlType; 41] = [
        ControlType::AppBar,
        ControlType::Button,
        ControlType::Calendar,
        ControlType::CheckBox,
        ControlType::ComboBox,
        ControlType::Custom,
        ControlType::DataGrid,
        ControlType::DataItem,
        ControlType::Document,
        ControlType::Edit,
        ControlType::Group,
        ControlType::Header,
        ControlType::HeaderItem,
        ControlType::Hyperlink,
        ControlType::Image,
        ControlType::List,
        ControlType::ListItem,
        ControlType::Menu,
        ControlType::MenuBar,
        ControlType::MenuItem,
        ControlType::Pane,
        ControlType::ProgressBar,
        ControlType::RadioButton,
        ControlType::ScrollBar,
        ControlType::SemanticZoom,
        ControlType::Separator,
        ControlType::Slider,
        ControlType::Spinner,
        ControlType::SplitButton,
        ControlType::StatusBar,
        ControlType::Tab,
        ControlType::TabItem,
        ControlType::Table,
        ControlType::Text,
        ControlType::Thumb,
        ControlType::TitleBar,
        ControlType::ToolBar,
        ControlType::ToolTip,
        ControlType::Tree,
        ControlType::TreeItem,
        ControlType::Window,
    ];

    /// The short UIA-style name (e.g. `"TabItem"`), used in control
    /// identifiers and serialized topology descriptions.
    pub fn as_str(self) -> &'static str {
        match self {
            ControlType::AppBar => "AppBar",
            ControlType::Button => "Button",
            ControlType::Calendar => "Calendar",
            ControlType::CheckBox => "CheckBox",
            ControlType::ComboBox => "ComboBox",
            ControlType::Custom => "Custom",
            ControlType::DataGrid => "DataGrid",
            ControlType::DataItem => "DataItem",
            ControlType::Document => "Document",
            ControlType::Edit => "Edit",
            ControlType::Group => "Group",
            ControlType::Header => "Header",
            ControlType::HeaderItem => "HeaderItem",
            ControlType::Hyperlink => "Hyperlink",
            ControlType::Image => "Image",
            ControlType::List => "List",
            ControlType::ListItem => "ListItem",
            ControlType::Menu => "Menu",
            ControlType::MenuBar => "MenuBar",
            ControlType::MenuItem => "MenuItem",
            ControlType::Pane => "Pane",
            ControlType::ProgressBar => "ProgressBar",
            ControlType::RadioButton => "RadioButton",
            ControlType::ScrollBar => "ScrollBar",
            ControlType::SemanticZoom => "SemanticZoom",
            ControlType::Separator => "Separator",
            ControlType::Slider => "Slider",
            ControlType::Spinner => "Spinner",
            ControlType::SplitButton => "SplitButton",
            ControlType::StatusBar => "StatusBar",
            ControlType::Tab => "Tab",
            ControlType::TabItem => "TabItem",
            ControlType::Table => "Table",
            ControlType::Text => "Text",
            ControlType::Thumb => "Thumb",
            ControlType::TitleBar => "TitleBar",
            ControlType::ToolBar => "ToolBar",
            ControlType::ToolTip => "ToolTip",
            ControlType::Tree => "Tree",
            ControlType::TreeItem => "TreeItem",
            ControlType::Window => "Window",
        }
    }

    /// Parses the short UIA-style name produced by [`ControlType::as_str`].
    pub fn parse(s: &str) -> Option<ControlType> {
        ControlType::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// Whether this is a "key type" for description purposes (§4.2).
    ///
    /// Key-type controls always carry their full description in the
    /// serialized topology because they organize functionality.
    pub fn is_key_type(self) -> bool {
        matches!(
            self,
            ControlType::Menu
                | ControlType::MenuBar
                | ControlType::MenuItem
                | ControlType::TabItem
                | ControlType::Tab
                | ControlType::ComboBox
                | ControlType::Group
                | ControlType::Button
                | ControlType::SplitButton
        )
    }

    /// Whether controls of this type usually act as navigation containers
    /// (non-leaf nodes in the navigation topology).
    pub fn is_typically_navigational(self) -> bool {
        matches!(
            self,
            ControlType::Menu
                | ControlType::MenuBar
                | ControlType::Tab
                | ControlType::TabItem
                | ControlType::ToolBar
                | ControlType::Pane
                | ControlType::Group
                | ControlType::Window
                | ControlType::TitleBar
        )
    }
}

impl std::fmt::Display for ControlType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_41_distinct_types() {
        let mut set = std::collections::BTreeSet::new();
        for c in ControlType::ALL {
            set.insert(c);
        }
        assert_eq!(set.len(), 41);
    }

    #[test]
    fn parse_round_trips() {
        for c in ControlType::ALL {
            assert_eq!(ControlType::parse(c.as_str()), Some(c));
        }
        assert_eq!(ControlType::parse("NotAType"), None);
    }

    #[test]
    fn key_types_include_organizers() {
        assert!(ControlType::TabItem.is_key_type());
        assert!(ControlType::Menu.is_key_type());
        assert!(!ControlType::Text.is_key_type());
        assert!(!ControlType::DataItem.is_key_type());
    }

    #[test]
    fn display_matches_as_str() {
        assert_eq!(ControlType::SplitButton.to_string(), "SplitButton");
    }
}
