//! Error types for accessibility operations.

use serde::{Deserialize, Serialize};

/// Result alias for accessibility operations.
pub type UiaResult<T> = Result<T, UiaError>;

/// Errors surfaced by the simulated accessibility layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UiaError {
    /// No control matched the requested identifier.
    ControlNotFound {
        /// The identifier that failed to resolve.
        target: String,
    },
    /// The control exists but is disabled; carries structured context so
    /// the caller (an LLM) can re-plan (§3.4 structured error feedback).
    ControlDisabled {
        /// The resolved control's name.
        name: String,
        /// Root-first ancestor path.
        path: String,
    },
    /// The control does not support the requested pattern.
    PatternNotSupported {
        /// The control's name.
        name: String,
        /// The pattern that was requested.
        pattern: String,
    },
    /// An argument was out of the legal range (e.g. scrollbar 120%).
    InvalidArgument {
        /// Description of the violation.
        message: String,
    },
    /// The operation would have partially applied; conservative executors
    /// refuse instead (§4.4).
    PartialExecutionRefused {
        /// Description of the first failing element.
        message: String,
    },
    /// An internal invariant was violated (indicates a provider bug).
    Internal {
        /// Description.
        message: String,
    },
}

impl std::fmt::Display for UiaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UiaError::ControlNotFound { target } => {
                write!(f, "control not found: {target}")
            }
            UiaError::ControlDisabled { name, path } => {
                write!(f, "control '{name}' at '{path}' is disabled")
            }
            UiaError::PatternNotSupported { name, pattern } => {
                write!(f, "control '{name}' does not support {pattern}")
            }
            UiaError::InvalidArgument { message } => write!(f, "invalid argument: {message}"),
            UiaError::PartialExecutionRefused { message } => {
                write!(f, "refusing partial execution: {message}")
            }
            UiaError::Internal { message } => write!(f, "internal error: {message}"),
        }
    }
}

impl std::error::Error for UiaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = UiaError::ControlDisabled { name: "Paste".into(), path: "Word/Home".into() };
        let s = e.to_string();
        assert!(s.contains("Paste"));
        assert!(s.contains("disabled"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = UiaError::InvalidArgument { message: "x".into() };
        let b = UiaError::InvalidArgument { message: "x".into() };
        assert_eq!(a, b);
    }
}
