//! Accessibility events.
//!
//! The evaluation setup (§5.1) registers a UIA event handler so applications
//! expose their full control trees (avoiding lazy-loading artifacts). The
//! simulated runtime emits the analogous events so clients (ripper,
//! executor) can detect new windows and structure changes.

use crate::RuntimeId;
use serde::{Deserialize, Serialize};

/// A UIA-style event emitted by the simulated provider.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UiaEvent {
    /// A new top-level or modal window opened.
    WindowOpened {
        /// Runtime id of the window root.
        window: RuntimeId,
        /// Window title.
        title: String,
        /// Owning process id.
        process_id: u32,
        /// Whether the window is modal.
        modal: bool,
    },
    /// A top-level or modal window closed.
    WindowClosed {
        /// Runtime id of the window root.
        window: RuntimeId,
        /// Window title.
        title: String,
    },
    /// The structure below a control changed (children added/removed).
    StructureChanged {
        /// Runtime id of the subtree root that changed.
        subtree: RuntimeId,
    },
    /// A property of a control changed (name, value, enabled, ...).
    PropertyChanged {
        /// Runtime id of the control.
        control: RuntimeId,
        /// Property name (UIA-style, e.g. `"Name"`, `"Value.Value"`).
        property: String,
    },
    /// Keyboard focus moved.
    FocusChanged {
        /// Runtime id of the newly focused control.
        control: RuntimeId,
    },
}

impl UiaEvent {
    /// Whether this event indicates a window was opened.
    pub fn is_window_opened(&self) -> bool {
        matches!(self, UiaEvent::WindowOpened { .. })
    }

    /// Whether this event indicates any structural change (window open or
    /// close, or a subtree mutation).
    pub fn is_structural(&self) -> bool {
        matches!(
            self,
            UiaEvent::WindowOpened { .. }
                | UiaEvent::WindowClosed { .. }
                | UiaEvent::StructureChanged { .. }
        )
    }
}

/// An append-only event log kept per session, mirroring an event handler
/// subscription.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<UiaEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Appends an event.
    pub fn push(&mut self, e: UiaEvent) {
        self.events.push(e);
    }

    /// All events since the beginning of the session.
    pub fn all(&self) -> &[UiaEvent] {
        &self.events
    }

    /// Events at or after the given cursor; pair with [`EventLog::cursor`].
    pub fn since(&self, cursor: usize) -> &[UiaEvent] {
        &self.events[cursor.min(self.events.len())..]
    }

    /// Current cursor (index one past the last event).
    pub fn cursor(&self) -> usize {
        self.events.len()
    }

    /// Whether any window opened at or after `cursor`.
    pub fn window_opened_since(&self, cursor: usize) -> Option<&UiaEvent> {
        self.since(cursor).iter().find(|e| e.is_window_opened())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_since_and_cursor() {
        let mut log = EventLog::new();
        let c0 = log.cursor();
        log.push(UiaEvent::FocusChanged { control: RuntimeId(1) });
        let c1 = log.cursor();
        log.push(UiaEvent::WindowOpened {
            window: RuntimeId(2),
            title: "Dialog".into(),
            process_id: 7,
            modal: true,
        });
        assert_eq!(log.since(c0).len(), 2);
        assert_eq!(log.since(c1).len(), 1);
        assert!(log.window_opened_since(c1).is_some());
        assert!(log.window_opened_since(log.cursor()).is_none());
    }

    #[test]
    fn structural_classification() {
        assert!(UiaEvent::StructureChanged { subtree: RuntimeId(1) }.is_structural());
        assert!(!UiaEvent::FocusChanged { control: RuntimeId(1) }.is_structural());
    }
}
