//! XPath-like control identifiers and fuzzy matching (§4.1, §3.4).
//!
//! Since UIA does not guarantee globally unique `automation_id`s, the paper
//! synthesizes an identifier of the form:
//!
//! ```text
//! primary_id|control_type|ancestor_path
//! ```
//!
//! where `primary_id` falls back from `automation_id` to `name` to
//! `[Unnamed]`, and `ancestor_path` is a slash-delimited chain of ancestor
//! names. Index-based addressing is deliberately avoided because dynamic
//! menus shift indices unpredictably.
//!
//! Exact matching can fail in live UIs (name variation, missing ids), so
//! the executor falls back to a [`FuzzyMatcher`] that scores candidates by
//! control type, ancestor hierarchy, and name similarity.

use crate::{ControlType, Node, Snapshot};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A 64-bit fingerprint of a [`ControlId`] (§4.1, hash+confirm design).
///
/// Keys are FxHash-style digests of the `primary | control_type |
/// ancestor_path` triple. Two distinct identifiers may collide (the key is
/// only 64 bits), so every keyed structure keeps the full [`ControlId`]
/// (or an equivalent component view) alongside and confirms equality on
/// lookup — collisions cost a comparison, never correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ControlKey(u64);

impl ControlKey {
    /// Fingerprints raw identifier components.
    ///
    /// Components are length-prefixed before hashing so `("ab", "c")` and
    /// `("a", "bc")` cannot alias.
    pub fn of_parts(primary: &str, control_type: ControlType, ancestor_path: &str) -> ControlKey {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        #[inline]
        fn mix(h: u64, w: u64) -> u64 {
            (h.rotate_left(5) ^ w).wrapping_mul(SEED)
        }
        #[inline]
        fn mix_str(mut h: u64, s: &str) -> u64 {
            h = mix(h, s.len() as u64);
            let bytes = s.as_bytes();
            let mut chunks = bytes.chunks_exact(8);
            for c in &mut chunks {
                h = mix(h, u64::from_le_bytes(c.try_into().unwrap()));
            }
            let mut tail = 0u64;
            for (i, &b) in chunks.remainder().iter().enumerate() {
                tail |= (b as u64) << (8 * i);
            }
            mix(h, tail)
        }
        let mut h = mix(SEED, control_type as u64);
        h = mix_str(h, primary);
        h = mix_str(h, ancestor_path);
        ControlKey(h)
    }

    /// Fingerprints a full identifier.
    pub fn of_id(id: &ControlId) -> ControlKey {
        ControlKey::of_parts(&id.primary, id.control_type, &id.ancestor_path)
    }

    /// The raw 64-bit digest.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a key from its raw digest (deserialization support;
    /// keys are pure functions of the identifier, so a stored digest stays
    /// valid as long as the identifier it was computed from is stored too).
    pub fn from_raw(raw: u64) -> ControlKey {
        ControlKey(raw)
    }
}

impl Serialize for ControlKey {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl Deserialize for ControlKey {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(ControlKey::from_raw(u64::from_value(v)?))
    }
}

/// A pass-through hasher for keys that are already high-quality digests
/// ([`ControlKey`]s, runtime ids). Avoids re-hashing through SipHash on
/// every map probe.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdentityHasher only accepts u64 writes");
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// A hash map keyed by pre-hashed 64-bit digests.
pub type KeyMap<K, V> = HashMap<K, V, BuildHasherDefault<IdentityHasher>>;

/// A set of [`ControlId`]s keyed by [`ControlKey`] with full-identifier
/// confirmation on every probe, so hash collisions cannot conflate two
/// distinct controls.
#[derive(Debug, Clone, Default)]
pub struct ControlIdSet {
    map: KeyMap<ControlKey, Vec<ControlId>>,
}

impl ControlIdSet {
    /// Creates an empty set.
    pub fn new() -> ControlIdSet {
        ControlIdSet::default()
    }

    /// Whether the set holds `id` (whose key is `key`).
    pub fn contains(&self, key: ControlKey, id: &ControlId) -> bool {
        self.map.get(&key).is_some_and(|bucket| bucket.iter().any(|c| c == id))
    }

    /// Inserts `id` under `key`; returns `true` if it was not present.
    /// The identifier is cloned only on actual insertion.
    pub fn insert(&mut self, key: ControlKey, id: &ControlId) -> bool {
        let bucket = self.map.entry(key).or_default();
        if bucket.iter().any(|c| c == id) {
            return false;
        }
        bucket.push(id.clone());
        true
    }

    /// Number of identifiers stored.
    pub fn len(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Synthesized control identifier: `primary_id|control_type|ancestor_path`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ControlId {
    /// `automation_id`, or `name`, or `"[Unnamed]"`.
    pub primary: String,
    /// UIA control type.
    pub control_type: ControlType,
    /// Slash-delimited root-first ancestor names.
    pub ancestor_path: String,
}

impl ControlId {
    /// Synthesizes the identifier for a snapshot node.
    ///
    /// Served from the snapshot's identity index: the ancestor path is the
    /// cached per-snapshot string, not a fresh walk-and-join.
    pub fn of(snap: &Snapshot, idx: usize) -> ControlId {
        snap.control_id(idx)
    }

    /// Serializes to the canonical `primary|type|path` string.
    pub fn encode(&self) -> String {
        format!("{}|{}|{}", self.primary, self.control_type.as_str(), self.ancestor_path)
    }

    /// Parses the canonical form produced by [`ControlId::encode`].
    pub fn decode(s: &str) -> Option<ControlId> {
        let mut parts = s.splitn(3, '|');
        let primary = parts.next()?.to_string();
        let ct = ControlType::parse(parts.next()?)?;
        let ancestor_path = parts.next()?.to_string();
        Some(ControlId { primary, control_type: ct, ancestor_path })
    }

    /// Whether a node matches this identifier exactly (component-wise,
    /// against the snapshot's cached paths — no allocation).
    pub fn matches_exact(&self, snap: &Snapshot, idx: usize) -> bool {
        snap.index().matches(snap, idx, self)
    }

    /// The last component of the ancestor path (immediate parent name).
    pub fn parent_name(&self) -> Option<&str> {
        self.ancestor_path.rsplit('/').next().filter(|s| !s.is_empty())
    }
}

impl std::fmt::Display for ControlId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.encode())
    }
}

/// A match produced by [`FuzzyMatcher`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchScore {
    /// Arena index of the candidate node.
    pub index: usize,
    /// Similarity in `[0, 1]`; `1.0` is an exact match.
    pub score: f64,
}

/// Fuzzy control matcher combining control type, ancestor hierarchy, and
/// name similarity (paper §3.4, "Handling unstable UI interaction").
#[derive(Debug, Clone)]
pub struct FuzzyMatcher {
    /// Minimum acceptable score; candidates below are rejected.
    pub threshold: f64,
    /// Weight of name similarity (the rest is split between type match and
    /// ancestor-path similarity).
    pub name_weight: f64,
}

impl Default for FuzzyMatcher {
    fn default() -> Self {
        // High enough that unrelated same-type siblings ("Borders" for
        // "Margins") are rejected, low enough that live-name variations
        // ("Next" -> "Next Page") with matching type and path still pass.
        FuzzyMatcher { threshold: 0.8, name_weight: 0.5 }
    }
}

impl FuzzyMatcher {
    /// Finds the best node for `target` in the snapshot, exact first and
    /// fuzzy as fallback. Returns `None` if nothing reaches the threshold.
    pub fn best_match(&self, snap: &Snapshot, target: &ControlId) -> Option<MatchScore> {
        self.best_match_within(snap, target, None)
    }

    /// Like [`FuzzyMatcher::best_match`] but restricted to descendants of
    /// `scope` when given.
    pub fn best_match_within(
        &self,
        snap: &Snapshot,
        target: &ControlId,
        scope: Option<usize>,
    ) -> Option<MatchScore> {
        self.best_match_filtered(snap, target, scope, false)
    }

    /// Like [`FuzzyMatcher::best_match_within`], optionally skipping
    /// off-screen candidates (an executor looking for something *visible*
    /// must not match scrolled-out content).
    pub fn best_match_filtered(
        &self,
        snap: &Snapshot,
        target: &ControlId,
        scope: Option<usize>,
        skip_offscreen: bool,
    ) -> Option<MatchScore> {
        self.best_match_prekeyed(snap, ControlKey::of_id(target), target, scope, skip_offscreen)
    }

    /// Like [`FuzzyMatcher::best_match_filtered`] with the target's
    /// fingerprint already in hand. Callers that resolve the same modeled
    /// controls repeatedly (the `visit` executor walking a forest path)
    /// precompute the key once at model-build time instead of re-hashing
    /// the identifier on every resolve.
    pub fn best_match_prekeyed(
        &self,
        snap: &Snapshot,
        key: ControlKey,
        target: &ControlId,
        scope: Option<usize>,
        skip_offscreen: bool,
    ) -> Option<MatchScore> {
        debug_assert_eq!(key, ControlKey::of_id(target));
        // Exact pass: keyed lookup in the snapshot identity index
        // (collision-confirmed), instead of scanning every candidate with
        // per-node path rebuilding. Among duplicate exact matches the
        // earliest arena index wins.
        let ix = snap.index();
        for i in ix.candidates(key) {
            if !ix.matches(snap, i, target) {
                continue;
            }
            if skip_offscreen && snap.node(i).props.offscreen {
                continue;
            }
            if let Some(root) = scope {
                if !snap.is_in_subtree(i, root) {
                    continue;
                }
            }
            return Some(MatchScore { index: i, score: 1.0 });
        }
        // Fuzzy pass.
        let candidates: Vec<usize> = match scope {
            Some(root) => snap.descendants(root),
            None => (0..snap.len()).collect(),
        };
        let mut best: Option<MatchScore> = None;
        let mut floor = self.threshold;
        for i in candidates {
            if skip_offscreen && snap.node(i).props.offscreen {
                continue;
            }
            let s = self.score_bounded(snap, i, target, floor);
            if s >= self.threshold && best.is_none_or(|b| s > b.score) {
                best = Some(MatchScore { index: i, score: s });
                floor = floor.max(s);
            }
        }
        best
    }

    /// Scores one candidate node against a target identifier.
    pub fn score(&self, snap: &Snapshot, idx: usize, target: &ControlId) -> f64 {
        self.score_bounded(snap, idx, target, 0.0)
    }

    /// Like [`FuzzyMatcher::score`], but may return early with an
    /// underestimate once the candidate provably cannot reach `floor`
    /// (cheap components are computed first; the name similarity is then
    /// bounded before any edit-distance work).
    fn score_bounded(&self, snap: &Snapshot, idx: usize, target: &ControlId, floor: f64) -> f64 {
        let n: &Node = snap.node(idx);
        let type_w = (1.0 - self.name_weight) * 0.5;
        let path_w = (1.0 - self.name_weight) * 0.5;

        let type_score = if n.props.control_type == target.control_type { 1.0 } else { 0.0 };
        let path_score = path_similarity(snap.index().path(idx), &target.ancestor_path);
        let fixed = type_w * type_score + path_w * path_score;
        // The name score needed to reach `floor`; above 1.0 is hopeless.
        let name_floor = (floor - fixed) / self.name_weight;
        if name_floor > 1.0 {
            return fixed;
        }

        let a = n.props.primary_id();
        let mut name_score = string_similarity_bounded(a, &target.primary, name_floor);
        if a != n.props.name {
            name_score = name_score.max(string_similarity_bounded(
                &n.props.name,
                &target.primary,
                name_floor,
            ));
        }
        self.name_weight * name_score + fixed
    }
}

/// Reusable per-thread buffers for similarity computations: lowercased
/// character vectors and the two Levenshtein DP rows. Fuzzy matching
/// scores hundreds of candidates per resolve; without this every call
/// paid four heap allocations.
struct SimScratch {
    al: Vec<char>,
    bl: Vec<char>,
    prev: Vec<usize>,
    cur: Vec<usize>,
}

thread_local! {
    static SIM_SCRATCH: std::cell::RefCell<SimScratch> =
        const {
            std::cell::RefCell::new(SimScratch {
                al: Vec::new(),
                bl: Vec::new(),
                prev: Vec::new(),
                cur: Vec::new(),
            })
        };
}

/// Normalized similarity of two strings based on Levenshtein distance with
/// a case-insensitive prefix bonus. Returns a value in `[0, 1]`.
pub fn string_similarity(a: &str, b: &str) -> f64 {
    string_similarity_bounded(a, b, 0.0)
}

/// Like [`string_similarity`], but may return `0.0` early when a cheap
/// length-difference bound proves the similarity cannot reach `floor`
/// (the edit distance between strings is at least their length
/// difference). Exact whenever the true similarity is `>= floor`, so
/// thresholded callers can reject candidates for ~nothing.
pub fn string_similarity_bounded(a: &str, b: &str, floor: f64) -> f64 {
    if a == b {
        return 1.0;
    }
    SIM_SCRATCH.with(|scratch| {
        let s = &mut *scratch.borrow_mut();
        s.al.clear();
        s.al.extend(a.chars().flat_map(char::to_lowercase));
        s.bl.clear();
        s.bl.extend(b.chars().flat_map(char::to_lowercase));
        if s.al == s.bl {
            return 0.97;
        }
        if s.al.is_empty() || s.bl.is_empty() {
            return 0.0;
        }
        let (la, lb) = (s.al.len(), s.bl.len());
        let max_len = la.max(lb);
        // d >= |la - lb|, so base <= base_bound; the prefix bonus can add
        // at most 0.25 (capped at 0.95).
        let base_bound = 1.0 - la.abs_diff(lb) as f64 / max_len as f64;
        let upper = base_bound.max((base_bound + 0.25).min(0.95));
        if upper < floor {
            return 0.0;
        }
        // Prefix containment: "Go To" vs "Go To…" or "Next" renamed
        // "Next Page".
        let prefix = s.al.starts_with(&s.bl) || s.bl.starts_with(&s.al);
        let d = lev_chars(&s.al, &s.bl, &mut s.prev, &mut s.cur);
        let base = 1.0 - d as f64 / max_len as f64;
        if prefix {
            (base + 0.25).min(0.95)
        } else {
            base
        }
    })
}

/// Similarity of two slash-delimited ancestor paths: fraction of matching
/// components, compared suffix-first (nearest ancestors matter most).
/// Allocation-free: components are compared straight off the split
/// iterators.
pub fn path_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    fn comps(s: &str) -> impl Iterator<Item = &str> {
        s.split('/').filter(|c| !c.is_empty())
    }
    let na = comps(a).count();
    let nb = comps(b).count();
    if na == 0 && nb == 0 {
        return 1.0;
    }
    let matched = a
        .rsplit('/')
        .filter(|c| !c.is_empty())
        .zip(b.rsplit('/').filter(|c| !c.is_empty()))
        .filter(|(x, y)| x.eq_ignore_ascii_case(y))
        .count();
    matched as f64 / na.max(nb) as f64
}

/// Levenshtein edit distance over characters.
pub fn levenshtein(a: &str, b: &str) -> usize {
    SIM_SCRATCH.with(|scratch| {
        let s = &mut *scratch.borrow_mut();
        s.al.clear();
        s.al.extend(a.chars());
        s.bl.clear();
        s.bl.extend(b.chars());
        lev_chars(&s.al, &s.bl, &mut s.prev, &mut s.cur)
    })
}

/// Two-row Levenshtein DP over char slices, reusing row buffers.
fn lev_chars(av: &[char], bv: &[char], prev: &mut Vec<usize>, cur: &mut Vec<usize>) -> usize {
    if av.is_empty() {
        return bv.len();
    }
    if bv.is_empty() {
        return av.len();
    }
    prev.clear();
    prev.extend(0..=bv.len());
    cur.clear();
    cur.resize(bv.len() + 1, 0);
    for (i, &ac) in av.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &bc) in bv.iter().enumerate() {
            let cost = usize::from(ac != bc);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(prev, cur);
    }
    prev[bv.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ControlProps, ControlType};

    fn snap_with(names: &[(&str, &str, ControlType)]) -> Snapshot {
        // names: (name, automation_id, type) as a chain root->leaf.
        let mut s = Snapshot::new();
        let mut parent = None;
        for (i, (name, auto, ct)) in names.iter().enumerate() {
            let mut p = ControlProps::new(*name, *ct);
            p.automation_id = auto.to_string();
            let idx = s.push(p, parent, 0);
            if i == 0 {
                s.push_window_root(idx);
            }
            parent = Some(idx);
        }
        s
    }

    #[test]
    fn encode_decode_round_trip() {
        let id = ControlId {
            primary: "FontColor".into(),
            control_type: ControlType::SplitButton,
            ancestor_path: "Word/Home/Font".into(),
        };
        let enc = id.encode();
        assert_eq!(enc, "FontColor|SplitButton|Word/Home/Font");
        assert_eq!(ControlId::decode(&enc), Some(id));
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(ControlId::decode("no-separators"), None);
        assert_eq!(ControlId::decode("a|NotAType|b"), None);
    }

    #[test]
    fn of_uses_fallback_primary() {
        let s = snap_with(&[
            ("Main", "", ControlType::Window),
            ("Home", "TabHome", ControlType::TabItem),
            ("Bold", "", ControlType::Button),
        ]);
        let id = ControlId::of(&s, 2);
        assert_eq!(id.primary, "Bold");
        assert_eq!(id.ancestor_path, "Main/Home");
        assert!(id.matches_exact(&s, 2));
        assert!(!id.matches_exact(&s, 1));
    }

    #[test]
    fn exact_match_preferred() {
        let s = snap_with(&[
            ("Main", "", ControlType::Window),
            ("Home", "", ControlType::TabItem),
            ("Bold", "", ControlType::Button),
        ]);
        let id = ControlId::of(&s, 2);
        let m = FuzzyMatcher::default().best_match(&s, &id).unwrap();
        assert_eq!(m.index, 2);
        assert_eq!(m.score, 1.0);
    }

    #[test]
    fn fuzzy_handles_name_variation() {
        // Modeled as "Next", live UI renamed to "Go To" -> should NOT match.
        // Modeled as "Next", live renamed "Next Page" -> should match.
        let s = snap_with(&[
            ("Main", "", ControlType::Window),
            ("Find and Replace", "", ControlType::Window),
            ("Next Page", "", ControlType::Button),
        ]);
        let id = ControlId {
            primary: "Next".into(),
            control_type: ControlType::Button,
            ancestor_path: "Main/Find and Replace".into(),
        };
        let m = FuzzyMatcher::default().best_match(&s, &id).expect("prefix variation matches");
        assert_eq!(m.index, 2);
        assert!(m.score < 1.0);
    }

    #[test]
    fn fuzzy_rejects_unrelated() {
        let s = snap_with(&[
            ("Main", "", ControlType::Window),
            ("Design", "", ControlType::TabItem),
            ("Watermark", "", ControlType::Button),
        ]);
        let id = ControlId {
            primary: "Conditional Formatting".into(),
            control_type: ControlType::MenuItem,
            ancestor_path: "Book1/Home/Styles".into(),
        };
        assert!(FuzzyMatcher::default().best_match(&s, &id).is_none());
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn path_similarity_suffix_weighted() {
        assert_eq!(path_similarity("A/B/C", "A/B/C"), 1.0);
        assert!(path_similarity("X/B/C", "A/B/C") > 0.5);
        assert_eq!(path_similarity("", ""), 1.0);
    }

    #[test]
    fn scoped_match_restricts_to_subtree() {
        let mut s = Snapshot::new();
        let w1 = s.push(ControlProps::new("W1", ControlType::Window), None, 0);
        s.push_window_root(w1);
        let b1 = s.push(ControlProps::new("OK", ControlType::Button), Some(w1), 0);
        let w2 = s.push(ControlProps::new("W2", ControlType::Window), None, 1);
        s.push_window_root(w2);
        let b2 = s.push(ControlProps::new("OK", ControlType::Button), Some(w2), 1);
        let id = ControlId {
            primary: "OK".into(),
            control_type: ControlType::Button,
            ancestor_path: "W2".into(),
        };
        let m = FuzzyMatcher::default().best_match_within(&s, &id, Some(w2)).unwrap();
        assert_eq!(m.index, b2);
        // Within w1's scope only the w1 button is a candidate and its path
        // differs; it may still fuzzily match, but must not be b2.
        if let Some(m1) = FuzzyMatcher::default().best_match_within(&s, &id, Some(w1)) {
            assert_eq!(m1.index, b1);
        }
    }

    #[test]
    fn control_key_separates_components() {
        // Length-prefixed hashing: shifting a character across the
        // component boundary must change the key.
        let k1 = ControlKey::of_parts("ab", ControlType::Button, "c");
        let k2 = ControlKey::of_parts("a", ControlType::Button, "bc");
        assert_ne!(k1, k2);
        let k3 = ControlKey::of_parts("ab", ControlType::MenuItem, "c");
        assert_ne!(k1, k3);
        // Deterministic across processes and runs.
        assert_eq!(k1, ControlKey::of_parts("ab", ControlType::Button, "c"));
    }

    #[test]
    fn control_id_set_confirms_on_forced_key_collision() {
        // Two distinct identifiers deliberately filed under one key: the
        // set must keep them apart by confirming the full identifier —
        // this is the collision-confirmation path that makes 64-bit keys
        // safe.
        let shared = ControlKey::of_parts("Bold", ControlType::Button, "W/Home/Font");
        let bold = ControlId {
            primary: "Bold".into(),
            control_type: ControlType::Button,
            ancestor_path: "W/Home/Font".into(),
        };
        let imposter = ControlId {
            primary: "Italic".into(),
            control_type: ControlType::Button,
            ancestor_path: "W/Home/Font".into(),
        };
        let mut set = ControlIdSet::new();
        assert!(set.insert(shared, &bold));
        assert!(!set.insert(shared, &bold), "re-insert is a no-op");
        assert!(set.contains(shared, &bold));
        assert!(!set.contains(shared, &imposter), "colliding key must not conflate ids");
        assert!(set.insert(shared, &imposter), "collision bucket holds both");
        assert!(set.contains(shared, &imposter));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn exact_match_uses_index_and_skips_offscreen() {
        let mut s = Snapshot::new();
        let w = s.push(ControlProps::new("W", ControlType::Window), None, 0);
        s.push_window_root(w);
        let mut hidden = ControlProps::new("Save", ControlType::Button);
        hidden.offscreen = true;
        let off = s.push(hidden, Some(w), 0);
        let on = s.push(ControlProps::new("Save", ControlType::Button), Some(w), 0);
        let id = ControlId::of(&s, on);
        // Unfiltered: the earlier (offscreen) duplicate wins, as the old
        // arena-order scan did.
        let m = FuzzyMatcher::default().best_match(&s, &id).unwrap();
        assert_eq!((m.index, m.score), (off, 1.0));
        // Visible-only: the exact pass must skip the offscreen duplicate.
        let m = FuzzyMatcher::default().best_match_filtered(&s, &id, None, true).unwrap();
        assert_eq!((m.index, m.score), (on, 1.0));
    }
}
