//! XPath-like control identifiers and fuzzy matching (§4.1, §3.4).
//!
//! Since UIA does not guarantee globally unique `automation_id`s, the paper
//! synthesizes an identifier of the form:
//!
//! ```text
//! primary_id|control_type|ancestor_path
//! ```
//!
//! where `primary_id` falls back from `automation_id` to `name` to
//! `[Unnamed]`, and `ancestor_path` is a slash-delimited chain of ancestor
//! names. Index-based addressing is deliberately avoided because dynamic
//! menus shift indices unpredictably.
//!
//! Exact matching can fail in live UIs (name variation, missing ids), so
//! the executor falls back to a [`FuzzyMatcher`] that scores candidates by
//! control type, ancestor hierarchy, and name similarity.

use crate::{ControlType, Node, Snapshot};
use serde::{Deserialize, Serialize};

/// Synthesized control identifier: `primary_id|control_type|ancestor_path`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ControlId {
    /// `automation_id`, or `name`, or `"[Unnamed]"`.
    pub primary: String,
    /// UIA control type.
    pub control_type: ControlType,
    /// Slash-delimited root-first ancestor names.
    pub ancestor_path: String,
}

impl ControlId {
    /// Synthesizes the identifier for a snapshot node.
    pub fn of(snap: &Snapshot, idx: usize) -> ControlId {
        let n = snap.node(idx);
        ControlId {
            primary: n.props.primary_id().to_string(),
            control_type: n.props.control_type,
            ancestor_path: snap.ancestor_path(idx),
        }
    }

    /// Serializes to the canonical `primary|type|path` string.
    pub fn encode(&self) -> String {
        format!("{}|{}|{}", self.primary, self.control_type.as_str(), self.ancestor_path)
    }

    /// Parses the canonical form produced by [`ControlId::encode`].
    pub fn decode(s: &str) -> Option<ControlId> {
        let mut parts = s.splitn(3, '|');
        let primary = parts.next()?.to_string();
        let ct = ControlType::parse(parts.next()?)?;
        let ancestor_path = parts.next()?.to_string();
        Some(ControlId { primary, control_type: ct, ancestor_path })
    }

    /// Whether a node matches this identifier exactly.
    pub fn matches_exact(&self, snap: &Snapshot, idx: usize) -> bool {
        let n = snap.node(idx);
        n.props.primary_id() == self.primary
            && n.props.control_type == self.control_type
            && snap.ancestor_path(idx) == self.ancestor_path
    }

    /// The last component of the ancestor path (immediate parent name).
    pub fn parent_name(&self) -> Option<&str> {
        self.ancestor_path.rsplit('/').next().filter(|s| !s.is_empty())
    }
}

impl std::fmt::Display for ControlId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.encode())
    }
}

/// A match produced by [`FuzzyMatcher`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchScore {
    /// Arena index of the candidate node.
    pub index: usize,
    /// Similarity in `[0, 1]`; `1.0` is an exact match.
    pub score: f64,
}

/// Fuzzy control matcher combining control type, ancestor hierarchy, and
/// name similarity (paper §3.4, "Handling unstable UI interaction").
#[derive(Debug, Clone)]
pub struct FuzzyMatcher {
    /// Minimum acceptable score; candidates below are rejected.
    pub threshold: f64,
    /// Weight of name similarity (the rest is split between type match and
    /// ancestor-path similarity).
    pub name_weight: f64,
}

impl Default for FuzzyMatcher {
    fn default() -> Self {
        // High enough that unrelated same-type siblings ("Borders" for
        // "Margins") are rejected, low enough that live-name variations
        // ("Next" -> "Next Page") with matching type and path still pass.
        FuzzyMatcher { threshold: 0.8, name_weight: 0.5 }
    }
}

impl FuzzyMatcher {
    /// Finds the best node for `target` in the snapshot, exact first and
    /// fuzzy as fallback. Returns `None` if nothing reaches the threshold.
    pub fn best_match(&self, snap: &Snapshot, target: &ControlId) -> Option<MatchScore> {
        self.best_match_within(snap, target, None)
    }

    /// Like [`FuzzyMatcher::best_match`] but restricted to descendants of
    /// `scope` when given.
    pub fn best_match_within(
        &self,
        snap: &Snapshot,
        target: &ControlId,
        scope: Option<usize>,
    ) -> Option<MatchScore> {
        self.best_match_filtered(snap, target, scope, false)
    }

    /// Like [`FuzzyMatcher::best_match_within`], optionally skipping
    /// off-screen candidates (an executor looking for something *visible*
    /// must not match scrolled-out content).
    pub fn best_match_filtered(
        &self,
        snap: &Snapshot,
        target: &ControlId,
        scope: Option<usize>,
        skip_offscreen: bool,
    ) -> Option<MatchScore> {
        let mut candidates: Vec<usize> = match scope {
            Some(root) => snap.descendants(root),
            None => (0..snap.len()).collect(),
        };
        if skip_offscreen {
            candidates.retain(|&i| !snap.node(i).props.offscreen);
        }
        // Exact pass.
        for &i in &candidates {
            if target.matches_exact(snap, i) {
                return Some(MatchScore { index: i, score: 1.0 });
            }
        }
        // Fuzzy pass.
        let mut best: Option<MatchScore> = None;
        for &i in &candidates {
            let s = self.score(snap, i, target);
            if s >= self.threshold && best.is_none_or(|b| s > b.score) {
                best = Some(MatchScore { index: i, score: s });
            }
        }
        best
    }

    /// Scores one candidate node against a target identifier.
    pub fn score(&self, snap: &Snapshot, idx: usize, target: &ControlId) -> f64 {
        let n: &Node = snap.node(idx);
        let type_w = (1.0 - self.name_weight) * 0.5;
        let path_w = (1.0 - self.name_weight) * 0.5;

        let type_score = if n.props.control_type == target.control_type { 1.0 } else { 0.0 };
        let name_score = {
            let a = n.props.primary_id();
            string_similarity(a, &target.primary)
                .max(string_similarity(&n.props.name, &target.primary))
        };
        let path_score = path_similarity(&snap.ancestor_path(idx), &target.ancestor_path);

        self.name_weight * name_score + type_w * type_score + path_w * path_score
    }
}

/// Normalized similarity of two strings based on Levenshtein distance with
/// a case-insensitive prefix bonus. Returns a value in `[0, 1]`.
pub fn string_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    let al = a.to_lowercase();
    let bl = b.to_lowercase();
    if al == bl {
        return 0.97;
    }
    if al.is_empty() || bl.is_empty() {
        return 0.0;
    }
    // Prefix containment: "Go To" vs "Go To…" or "Next" renamed "Next Page".
    let prefix = al.starts_with(&bl) || bl.starts_with(&al);
    let d = levenshtein(&al, &bl);
    let max_len = al.chars().count().max(bl.chars().count());
    let base = 1.0 - d as f64 / max_len as f64;
    if prefix {
        (base + 0.25).min(0.95)
    } else {
        base
    }
}

/// Similarity of two slash-delimited ancestor paths: fraction of matching
/// components, compared suffix-first (nearest ancestors matter most).
pub fn path_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    let av: Vec<&str> = a.split('/').filter(|s| !s.is_empty()).collect();
    let bv: Vec<&str> = b.split('/').filter(|s| !s.is_empty()).collect();
    if av.is_empty() && bv.is_empty() {
        return 1.0;
    }
    let n = av.len().max(bv.len());
    let mut matched = 0usize;
    for k in 1..=av.len().min(bv.len()) {
        if av[av.len() - k].eq_ignore_ascii_case(bv[bv.len() - k]) {
            matched += 1;
        }
    }
    matched as f64 / n as f64
}

/// Levenshtein edit distance over characters.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    if av.is_empty() {
        return bv.len();
    }
    if bv.is_empty() {
        return av.len();
    }
    let mut prev: Vec<usize> = (0..=bv.len()).collect();
    let mut cur = vec![0usize; bv.len() + 1];
    for (i, &ac) in av.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &bc) in bv.iter().enumerate() {
            let cost = usize::from(ac != bc);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[bv.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ControlProps, ControlType};

    fn snap_with(names: &[(&str, &str, ControlType)]) -> Snapshot {
        // names: (name, automation_id, type) as a chain root->leaf.
        let mut s = Snapshot::new();
        let mut parent = None;
        for (i, (name, auto, ct)) in names.iter().enumerate() {
            let mut p = ControlProps::new(*name, *ct);
            p.automation_id = auto.to_string();
            let idx = s.push(p, parent, 0);
            if i == 0 {
                s.push_window_root(idx);
            }
            parent = Some(idx);
        }
        s
    }

    #[test]
    fn encode_decode_round_trip() {
        let id = ControlId {
            primary: "FontColor".into(),
            control_type: ControlType::SplitButton,
            ancestor_path: "Word/Home/Font".into(),
        };
        let enc = id.encode();
        assert_eq!(enc, "FontColor|SplitButton|Word/Home/Font");
        assert_eq!(ControlId::decode(&enc), Some(id));
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(ControlId::decode("no-separators"), None);
        assert_eq!(ControlId::decode("a|NotAType|b"), None);
    }

    #[test]
    fn of_uses_fallback_primary() {
        let s = snap_with(&[
            ("Main", "", ControlType::Window),
            ("Home", "TabHome", ControlType::TabItem),
            ("Bold", "", ControlType::Button),
        ]);
        let id = ControlId::of(&s, 2);
        assert_eq!(id.primary, "Bold");
        assert_eq!(id.ancestor_path, "Main/Home");
        assert!(id.matches_exact(&s, 2));
        assert!(!id.matches_exact(&s, 1));
    }

    #[test]
    fn exact_match_preferred() {
        let s = snap_with(&[
            ("Main", "", ControlType::Window),
            ("Home", "", ControlType::TabItem),
            ("Bold", "", ControlType::Button),
        ]);
        let id = ControlId::of(&s, 2);
        let m = FuzzyMatcher::default().best_match(&s, &id).unwrap();
        assert_eq!(m.index, 2);
        assert_eq!(m.score, 1.0);
    }

    #[test]
    fn fuzzy_handles_name_variation() {
        // Modeled as "Next", live UI renamed to "Go To" -> should NOT match.
        // Modeled as "Next", live renamed "Next Page" -> should match.
        let s = snap_with(&[
            ("Main", "", ControlType::Window),
            ("Find and Replace", "", ControlType::Window),
            ("Next Page", "", ControlType::Button),
        ]);
        let id = ControlId {
            primary: "Next".into(),
            control_type: ControlType::Button,
            ancestor_path: "Main/Find and Replace".into(),
        };
        let m = FuzzyMatcher::default().best_match(&s, &id).expect("prefix variation matches");
        assert_eq!(m.index, 2);
        assert!(m.score < 1.0);
    }

    #[test]
    fn fuzzy_rejects_unrelated() {
        let s = snap_with(&[
            ("Main", "", ControlType::Window),
            ("Design", "", ControlType::TabItem),
            ("Watermark", "", ControlType::Button),
        ]);
        let id = ControlId {
            primary: "Conditional Formatting".into(),
            control_type: ControlType::MenuItem,
            ancestor_path: "Book1/Home/Styles".into(),
        };
        assert!(FuzzyMatcher::default().best_match(&s, &id).is_none());
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn path_similarity_suffix_weighted() {
        assert_eq!(path_similarity("A/B/C", "A/B/C"), 1.0);
        assert!(path_similarity("X/B/C", "A/B/C") > 0.5);
        assert_eq!(path_similarity("", ""), 1.0);
    }

    #[test]
    fn scoped_match_restricts_to_subtree() {
        let mut s = Snapshot::new();
        let w1 = s.push(ControlProps::new("W1", ControlType::Window), None, 0);
        s.push_window_root(w1);
        let b1 = s.push(ControlProps::new("OK", ControlType::Button), Some(w1), 0);
        let w2 = s.push(ControlProps::new("W2", ControlType::Window), None, 1);
        s.push_window_root(w2);
        let b2 = s.push(ControlProps::new("OK", ControlType::Button), Some(w2), 1);
        let id = ControlId {
            primary: "OK".into(),
            control_type: ControlType::Button,
            ancestor_path: "W2".into(),
        };
        let m = FuzzyMatcher::default().best_match_within(&s, &id, Some(w2)).unwrap();
        assert_eq!(m.index, b2);
        // Within w1's scope only the w1 button is a candidate and its path
        // differs; it may still fuzzily match, but must not be b2.
        if let Some(m1) = FuzzyMatcher::default().best_match_within(&s, &id, Some(w1)) {
            assert_eq!(m1.index, b1);
        }
    }
}
