//! The snapshot-resident control-identity index (§4.1, §3.4).
//!
//! Both the offline ripper and the online `visit` executor resolve
//! synthesized `primary|type|ancestor_path` identifiers ([`ControlId`])
//! against freshly captured snapshots. Doing that naively is quadratic in
//! practice: every [`ControlId::of`] re-walks and re-joins the ancestor
//! chain, every resolve is an O(n) scan that recomputes those paths per
//! candidate, and the ripper's differential capture materializes encoded
//! string sets for two snapshots per click.
//!
//! [`SnapIndex`] computes control identity **once per snapshot** in a
//! single O(n) arena pass:
//!
//! - the ancestor path of each node (shared via `Arc<str>` — all siblings
//!   point at one allocation),
//! - a 64-bit [`ControlKey`] fingerprint per node,
//! - node depths, and the runtime-id column.
//!
//! Two keyed tables are derived **lazily** from those columns, because a
//! freshly captured snapshot often serves exactly one query before being
//! dropped (each replay step in the ripper captures its own snapshot):
//!
//! - a `ControlKey -> arena indices` multimap, built on first *batch*
//!   probing ([`SnapIndex::key_multimap`]) — the ripper's differential
//!   capture probes it once per post-click node. Cold single probes
//!   ([`SnapIndex::resolve`]) instead scan the key column: a branch-free
//!   `u64` comparison per node, with no per-snapshot allocation.
//! - an O(1) `RuntimeId -> index` table replacing the linear
//!   [`Snapshot::index_of_runtime`] scan, built on the first runtime
//!   lookup.
//!
//! # Hash + confirm
//!
//! Keys are 64-bit digests, so distinct identifiers may collide. Every
//! keyed lookup therefore confirms candidates against the full identifier
//! components before returning them ([`SnapIndex::resolve`] compares
//! primary id, control type, and cached path). A collision costs one extra
//! string comparison; it can never return the wrong control. This is why
//! the tables can use pass-through hashing ([`KeyMap`]) safely.
//!
//! # Why not index-based addressing?
//!
//! The paper deliberately avoids identifying controls by tree position
//! (child index): dynamic menus shift indices unpredictably between
//! snapshots (§4.1). The index accelerates *name-path* identity — it does
//! not change what identity means, so ripped UNGs and resolution results
//! are byte-identical to the string-keyed implementation.
//!
//! The index is built lazily on first use (snapshots are immutable once
//! built; any later mutation through `&mut` accessors invalidates it) and
//! is never serialized.

use crate::ident::{ControlKey, KeyMap};
use crate::{ControlId, RuntimeId, Snapshot};
use std::sync::{Arc, OnceLock};

/// A carry-forward seed for one arena range of a snapshot: the range was
/// copied verbatim (position-shifted, content-identical) from a donor
/// snapshot whose identity index is already materialized, so the donor's
/// per-node columns — shared path `Arc`s included — can be spliced instead
/// of recomputed. See [`Snapshot::seed_index_window`].
#[derive(Debug, Clone)]
pub(crate) struct IndexSeed {
    /// First arena index of the copied range in the *new* snapshot.
    pub start: usize,
    /// One past the last arena index of the copied range.
    pub end: usize,
    /// The donor's materialized index.
    pub donor: Arc<SnapIndex>,
    /// First arena index of the range in the *donor* snapshot.
    pub donor_start: usize,
}

/// A multimap bucket: almost always a single index, so the single case is
/// stored inline (no heap allocation per distinct key).
#[derive(Debug, Clone)]
pub enum Bucket {
    /// A single arena index (the common case), stored inline.
    One(u32),
    /// Two or more arena indices, in arena order.
    Many(Vec<u32>),
}

impl Bucket {
    fn push(&mut self, idx: u32) {
        match self {
            Bucket::One(first) => *self = Bucket::Many(vec![*first, idx]),
            Bucket::Many(v) => v.push(idx),
        }
    }

    /// Indices in arena order.
    pub fn as_slice(&self) -> &[u32] {
        match self {
            Bucket::One(first) => std::slice::from_ref(first),
            Bucket::Many(v) => v,
        }
    }
}

/// Candidate arena indices for one [`ControlKey`], in arena order.
///
/// Candidates, not answers: the fingerprint may collide, so callers must
/// confirm identity (e.g. via [`SnapIndex::matches`]).
pub enum Candidates<'a> {
    /// Backed by the built multimap.
    Indexed(std::slice::Iter<'a, u32>),
    /// Cold path: scanning the key column.
    Scan {
        /// Remaining keys to scan.
        keys: &'a [ControlKey],
        /// Key being searched.
        key: ControlKey,
        /// Next position to examine.
        pos: usize,
    },
}

impl Iterator for Candidates<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            Candidates::Indexed(it) => it.next().map(|&i| i as usize),
            Candidates::Scan { keys, key, pos } => {
                while *pos < keys.len() {
                    let i = *pos;
                    *pos += 1;
                    if keys[i] == *key {
                        return Some(i);
                    }
                }
                None
            }
        }
    }
}

/// Per-snapshot identity index. Core columns are built in one O(n) pass by
/// [`SnapIndex::build`]; the keyed tables derive lazily from them.
#[derive(Debug, Default)]
pub struct SnapIndex {
    /// Ancestor path per node; siblings share one `Arc`.
    paths: Vec<Arc<str>>,
    /// Identity fingerprint per node.
    keys: Vec<ControlKey>,
    /// Node depth (root = 0) per node.
    depths: Vec<u32>,
    /// Runtime id per node (copied so the lazy table needs no snapshot).
    runtimes: Vec<u64>,
    /// Fingerprint -> arena indices; built on first batch probe.
    by_key: OnceLock<KeyMap<ControlKey, Bucket>>,
    /// Runtime id -> arena index; built on first runtime lookup.
    by_runtime: OnceLock<KeyMap<u64, u32>>,
}

impl Clone for SnapIndex {
    fn clone(&self) -> SnapIndex {
        // The lazy tables derive from the columns; let the clone rebuild
        // them on demand.
        SnapIndex {
            paths: self.paths.clone(),
            keys: self.keys.clone(),
            depths: self.depths.clone(),
            runtimes: self.runtimes.clone(),
            by_key: OnceLock::new(),
            by_runtime: OnceLock::new(),
        }
    }
}

impl SnapIndex {
    /// Builds the core identity columns in one pass over the arena.
    ///
    /// Relies on the arena invariant that parents precede children
    /// (guaranteed by [`Snapshot::push`]).
    pub fn build(snap: &Snapshot) -> SnapIndex {
        Self::build_with_seeds(snap, &[])
    }

    /// [`SnapIndex::build`] with subtree carry-forward: arena ranges named
    /// by `seeds` were copied verbatim from donor snapshots, so their
    /// columns are spliced from the donors' already-materialized indexes
    /// (path `Arc`s cloned, key/depth/runtime columns memcpy'd) and only
    /// the remaining — dirty — ranges pay per-node construction.
    ///
    /// Soundness: ancestor paths never cross a window boundary (window
    /// roots have no parent), so a window's path/key/depth columns are a
    /// pure function of its node block's contents — identical wherever the
    /// block sits in the arena. Seeds must be non-overlapping, sorted by
    /// `start`, and cover only verbatim-copied ranges; the caller
    /// ([`Snapshot::seed_index_window`]) guarantees all three.
    pub(crate) fn build_with_seeds(snap: &Snapshot, seeds: &[IndexSeed]) -> SnapIndex {
        let n = snap.len();
        let mut paths: Vec<Arc<str>> = Vec::with_capacity(n);
        let mut keys: Vec<ControlKey> = Vec::with_capacity(n);
        let mut depths: Vec<u32> = Vec::with_capacity(n);
        let mut runtimes: Vec<u64> = Vec::with_capacity(n);
        // The path each node's *children* inherit, built at most once per
        // parent and shared by all of its children.
        let mut child_paths: Vec<Option<Arc<str>>> = vec![None; n];
        let empty: Arc<str> = Arc::from("");

        let mut seed_iter = seeds.iter().peekable();
        let mut idx = 0usize;
        while idx < n {
            if let Some(seed) = seed_iter.peek() {
                if seed.start == idx {
                    let len = seed.end - seed.start;
                    let ds = seed.donor_start;
                    let d = &seed.donor;
                    #[cfg(debug_assertions)]
                    for k in 0..len {
                        debug_assert_eq!(
                            d.runtimes[ds + k],
                            snap.node(idx + k).runtime_id.0,
                            "seeded range must be a verbatim copy of the donor range"
                        );
                    }
                    paths.extend_from_slice(&d.paths[ds..ds + len]);
                    keys.extend_from_slice(&d.keys[ds..ds + len]);
                    depths.extend_from_slice(&d.depths[ds..ds + len]);
                    runtimes.extend_from_slice(&d.runtimes[ds..ds + len]);
                    seed_iter.next();
                    idx += len;
                    continue;
                }
            }
            let node = snap.node(idx);
            let (path, depth) = match node.parent {
                None => (empty.clone(), 0),
                Some(p) => {
                    debug_assert!(p < idx, "arena parents precede children");
                    let parent_path = child_paths[p].get_or_insert_with(|| {
                        let pp: &str = &paths[p];
                        let pname = display_name(&snap.node(p).props.name);
                        if pp.is_empty() {
                            Arc::from(pname)
                        } else {
                            let mut s = String::with_capacity(pp.len() + 1 + pname.len());
                            s.push_str(pp);
                            s.push('/');
                            s.push_str(pname);
                            Arc::from(s.as_str())
                        }
                    });
                    (parent_path.clone(), depths[p] + 1)
                }
            };
            keys.push(ControlKey::of_parts(
                node.props.primary_id(),
                node.props.control_type,
                &path,
            ));
            paths.push(path);
            depths.push(depth);
            runtimes.push(node.runtime_id.0);
            idx += 1;
        }

        SnapIndex {
            paths,
            keys,
            depths,
            runtimes,
            by_key: OnceLock::new(),
            by_runtime: OnceLock::new(),
        }
    }

    /// The cached ancestor path of a node (root-first, slash-delimited).
    pub fn path(&self, idx: usize) -> &str {
        &self.paths[idx]
    }

    /// The identity fingerprint of a node.
    pub fn key(&self, idx: usize) -> ControlKey {
        self.keys[idx]
    }

    /// The depth of a node (root = 0).
    pub fn depth(&self, idx: usize) -> usize {
        self.depths[idx] as usize
    }

    /// The `ControlKey -> arena indices` multimap, built on first use.
    ///
    /// Call this before a batch of keyed probes (e.g. the ripper probes
    /// once per post-click node); one O(n) build amortizes across them.
    /// Isolated probes are cheaper through [`SnapIndex::candidates`]'s
    /// scan path.
    pub fn key_multimap(&self) -> &KeyMap<ControlKey, Bucket> {
        self.by_key.get_or_init(|| {
            let mut map: KeyMap<ControlKey, Bucket> = KeyMap::default();
            map.reserve(self.keys.len());
            for (i, &k) in self.keys.iter().enumerate() {
                map.entry(k).and_modify(|b| b.push(i as u32)).or_insert(Bucket::One(i as u32));
            }
            map
        })
    }

    /// Arena indices whose fingerprint equals `key`, in arena order: O(1)
    /// through the multimap when built, otherwise a branch-free scan of
    /// the key column (no allocation — right for one-off probes).
    pub fn candidates(&self, key: ControlKey) -> Candidates<'_> {
        match self.by_key.get() {
            Some(map) => {
                Candidates::Indexed(map.get(&key).map(Bucket::as_slice).unwrap_or(&[]).iter())
            }
            None => Candidates::Scan { keys: &self.keys, key, pos: 0 },
        }
    }

    /// Whether the node at `idx` matches the identifier exactly
    /// (component-wise; uses the cached path, no allocation).
    pub fn matches(&self, snap: &Snapshot, idx: usize, id: &ControlId) -> bool {
        let props = &snap.node(idx).props;
        props.control_type == id.control_type
            && props.primary_id() == id.primary
            && *self.paths[idx] == *id.ancestor_path
    }

    /// Resolves an identifier to the first exactly matching arena index
    /// (arena order, matching the old linear scan's tie-break).
    pub fn resolve(&self, snap: &Snapshot, id: &ControlId) -> Option<usize> {
        let key = ControlKey::of_id(id);
        self.candidates(key).find(|&i| self.matches(snap, i, id))
    }

    /// The arena index carrying a runtime id (O(1); the table builds on
    /// the first lookup).
    pub fn index_of_runtime(&self, rt: RuntimeId) -> Option<usize> {
        let table = self.by_runtime.get_or_init(|| {
            let mut map: KeyMap<u64, u32> = KeyMap::default();
            map.reserve(self.runtimes.len());
            for (i, &r) in self.runtimes.iter().enumerate() {
                map.insert(r, i as u32);
            }
            map
        });
        table.get(&rt.0).map(|&i| i as usize)
    }

    /// Synthesizes the full identifier for a node from cached parts.
    pub fn control_id(&self, snap: &Snapshot, idx: usize) -> ControlId {
        let props = &snap.node(idx).props;
        ControlId {
            primary: props.primary_id().to_string(),
            control_type: props.control_type,
            ancestor_path: self.paths[idx].to_string(),
        }
    }
}

/// The name a node contributes to its descendants' ancestor paths.
fn display_name(name: &str) -> &str {
    if name.is_empty() {
        "[Unnamed]"
    } else {
        name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ControlProps, ControlType};

    fn sample() -> Snapshot {
        let mut s = Snapshot::new();
        let w = s.push(ControlProps::new("Main", ControlType::Window), None, 0);
        s.push_window_root(w);
        let tab = s.push(ControlProps::new("Home", ControlType::TabItem), Some(w), 0);
        let grp = s.push(ControlProps::new("", ControlType::Group), Some(tab), 0);
        s.push(ControlProps::new("Bold", ControlType::Button), Some(grp), 0);
        s.push(ControlProps::new("Italic", ControlType::Button), Some(grp), 0);
        s
    }

    #[test]
    fn paths_match_walked_ancestor_paths() {
        let s = sample();
        let ix = SnapIndex::build(&s);
        for (i, _) in s.iter() {
            assert_eq!(ix.path(i), s.ancestor_path(i), "node {i}");
        }
        // Unnamed ancestors appear as [Unnamed], exactly like the walk.
        assert_eq!(ix.path(3), "Main/Home/[Unnamed]");
    }

    #[test]
    fn sibling_paths_share_one_allocation() {
        let s = sample();
        let ix = SnapIndex::build(&s);
        assert!(Arc::ptr_eq(&ix.paths[3], &ix.paths[4]));
    }

    #[test]
    fn resolve_round_trips_every_node() {
        let s = sample();
        let ix = SnapIndex::build(&s);
        for (i, _) in s.iter() {
            let id = ix.control_id(&s, i);
            // Cold (scan) path.
            assert_eq!(ix.resolve(&s, &id), Some(i));
        }
        // Warm (multimap) path agrees.
        ix.key_multimap();
        for (i, _) in s.iter() {
            let id = ix.control_id(&s, i);
            assert_eq!(ix.resolve(&s, &id), Some(i));
        }
    }

    #[test]
    fn runtime_table_matches_linear_scan() {
        let mut s = sample();
        s.set_runtime_id(2, RuntimeId(77));
        let ix = SnapIndex::build(&s);
        assert_eq!(ix.index_of_runtime(RuntimeId(77)), Some(2));
        assert_eq!(ix.index_of_runtime(RuntimeId(999)), None);
    }

    #[test]
    fn duplicate_identities_resolve_to_first_in_arena_order() {
        let mut s = Snapshot::new();
        let w = s.push(ControlProps::new("W", ControlType::Window), None, 0);
        s.push_window_root(w);
        let a = s.push(ControlProps::new("OK", ControlType::Button), Some(w), 0);
        let b = s.push(ControlProps::new("OK", ControlType::Button), Some(w), 0);
        let ix = SnapIndex::build(&s);
        let id = ix.control_id(&s, a);
        assert_eq!(ix.resolve(&s, &id), Some(a));
        // Both duplicates surface as candidates, scan and indexed alike.
        assert_eq!(ix.candidates(ix.key(a)).collect::<Vec<_>>(), vec![a, b]);
        ix.key_multimap();
        assert_eq!(ix.candidates(ix.key(a)).collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(ix.resolve(&s, &id), Some(a));
    }

    #[test]
    fn depths_match_walks() {
        let s = sample();
        let ix = SnapIndex::build(&s);
        for (i, _) in s.iter() {
            assert_eq!(ix.depth(i), s.depth(i));
        }
    }

    /// Carry-forward splicing: a snapshot whose first window block was
    /// copied verbatim from a donor builds an index equal to a from-
    /// scratch build, sharing the donor's path allocations for the copied
    /// range and recomputing only the dirty tail.
    #[test]
    fn seeded_build_matches_fresh_build_and_shares_path_arcs() {
        let donor = sample();
        let donor_ix = donor.index_if_built();
        assert!(donor_ix.is_none(), "index is lazy");
        let donor_ix = {
            donor.index();
            donor.index_if_built().expect("materialized on first use")
        };

        // Rebuild: window 0 copied from the donor, then a dirty window.
        let mut next = Snapshot::new();
        let w0 = next.append_window_from(&donor, 0, donor.len(), 0);
        next.push_window_root(w0);
        next.seed_index_window(0, donor.len(), Arc::clone(&donor_ix), 0);
        let dlg = next.push(ControlProps::new("Box", ControlType::Window), None, 1);
        next.push_window_root(dlg);
        next.push(ControlProps::new("OK", ControlType::Button), Some(dlg), 1);

        let spliced = next.index();
        let fresh = SnapIndex::build_with_seeds(&next, &[]);
        for (i, _) in next.iter() {
            assert_eq!(spliced.path(i), fresh.path(i), "node {i}");
            assert_eq!(spliced.key(i), fresh.key(i), "node {i}");
            assert_eq!(spliced.depth(i), fresh.depth(i), "node {i}");
            let id = spliced.control_id(&next, i);
            assert_eq!(spliced.resolve(&next, &id), fresh.resolve(&next, &id), "node {i}");
        }
        // The copied range shares the donor's allocations (no rebuild).
        for i in 0..donor.len() {
            assert!(
                std::ptr::eq(spliced.path(i).as_ptr(), donor_ix.path(i).as_ptr()),
                "node {i}: spliced path must alias the donor's Arc"
            );
        }
        // Runtime lookups still resolve across both ranges.
        for (i, n) in next.iter() {
            assert_eq!(spliced.index_of_runtime(n.runtime_id), Some(i));
        }
    }
}
