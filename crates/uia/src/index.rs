//! The snapshot-resident control-identity index (§4.1, §3.4).
//!
//! Both the offline ripper and the online `visit` executor resolve
//! synthesized `primary|type|ancestor_path` identifiers ([`ControlId`])
//! against freshly captured snapshots. Doing that naively is quadratic in
//! practice: every [`ControlId::of`] re-walks and re-joins the ancestor
//! chain, every resolve is an O(n) scan that recomputes those paths per
//! candidate, and the ripper's differential capture materializes encoded
//! string sets for two snapshots per click.
//!
//! [`SnapIndex`] computes control identity **once per snapshot** in a
//! single O(n) arena pass:
//!
//! - the ancestor path of each node (shared via `Arc<str>` — all siblings
//!   point at one allocation),
//! - a 64-bit [`ControlKey`] fingerprint per node,
//! - node depths, and the runtime-id column.
//!
//! Two keyed tables are derived **lazily** from those columns, because a
//! freshly captured snapshot often serves exactly one query before being
//! dropped (each replay step in the ripper captures its own snapshot):
//!
//! - a `ControlKey -> arena indices` multimap, built on first *batch*
//!   probing ([`SnapIndex::key_multimap`]) — the ripper's differential
//!   capture probes it once per post-click node. Cold single probes
//!   ([`SnapIndex::resolve`]) instead scan the key column: a branch-free
//!   `u64` comparison per node, with no per-snapshot allocation.
//! - an O(1) `RuntimeId -> index` table replacing the linear
//!   [`Snapshot::index_of_runtime`] scan, built on the first runtime
//!   lookup.
//!
//! # Hash + confirm
//!
//! Keys are 64-bit digests, so distinct identifiers may collide. Every
//! keyed lookup therefore confirms candidates against the full identifier
//! components before returning them ([`SnapIndex::resolve`] compares
//! primary id, control type, and cached path). A collision costs one extra
//! string comparison; it can never return the wrong control. This is why
//! the tables can use pass-through hashing ([`KeyMap`]) safely.
//!
//! # Why not index-based addressing?
//!
//! The paper deliberately avoids identifying controls by tree position
//! (child index): dynamic menus shift indices unpredictably between
//! snapshots (§4.1). The index accelerates *name-path* identity — it does
//! not change what identity means, so ripped UNGs and resolution results
//! are byte-identical to the string-keyed implementation.
//!
//! The index is built lazily on first use (snapshots are immutable once
//! built; any later mutation through `&mut` accessors invalidates it) and
//! is never serialized.

use crate::ident::{ControlKey, KeyMap};
use crate::{ControlId, RuntimeId, Snapshot};
use std::sync::{Arc, OnceLock};

/// A multimap bucket: almost always a single index, so the single case is
/// stored inline (no heap allocation per distinct key).
#[derive(Debug, Clone)]
pub enum Bucket {
    /// A single arena index (the common case), stored inline.
    One(u32),
    /// Two or more arena indices, in arena order.
    Many(Vec<u32>),
}

impl Bucket {
    fn push(&mut self, idx: u32) {
        match self {
            Bucket::One(first) => *self = Bucket::Many(vec![*first, idx]),
            Bucket::Many(v) => v.push(idx),
        }
    }

    /// Indices in arena order.
    pub fn as_slice(&self) -> &[u32] {
        match self {
            Bucket::One(first) => std::slice::from_ref(first),
            Bucket::Many(v) => v,
        }
    }
}

/// Candidate arena indices for one [`ControlKey`], in arena order.
///
/// Candidates, not answers: the fingerprint may collide, so callers must
/// confirm identity (e.g. via [`SnapIndex::matches`]).
pub enum Candidates<'a> {
    /// Backed by the built multimap.
    Indexed(std::slice::Iter<'a, u32>),
    /// Cold path: scanning the key column.
    Scan {
        /// Remaining keys to scan.
        keys: &'a [ControlKey],
        /// Key being searched.
        key: ControlKey,
        /// Next position to examine.
        pos: usize,
    },
}

impl Iterator for Candidates<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            Candidates::Indexed(it) => it.next().map(|&i| i as usize),
            Candidates::Scan { keys, key, pos } => {
                while *pos < keys.len() {
                    let i = *pos;
                    *pos += 1;
                    if keys[i] == *key {
                        return Some(i);
                    }
                }
                None
            }
        }
    }
}

/// Per-snapshot identity index. Core columns are built in one O(n) pass by
/// [`SnapIndex::build`]; the keyed tables derive lazily from them.
#[derive(Debug, Default)]
pub struct SnapIndex {
    /// Ancestor path per node; siblings share one `Arc`.
    paths: Vec<Arc<str>>,
    /// Identity fingerprint per node.
    keys: Vec<ControlKey>,
    /// Node depth (root = 0) per node.
    depths: Vec<u32>,
    /// Runtime id per node (copied so the lazy table needs no snapshot).
    runtimes: Vec<u64>,
    /// Fingerprint -> arena indices; built on first batch probe.
    by_key: OnceLock<KeyMap<ControlKey, Bucket>>,
    /// Runtime id -> arena index; built on first runtime lookup.
    by_runtime: OnceLock<KeyMap<u64, u32>>,
}

impl Clone for SnapIndex {
    fn clone(&self) -> SnapIndex {
        // The lazy tables derive from the columns; let the clone rebuild
        // them on demand.
        SnapIndex {
            paths: self.paths.clone(),
            keys: self.keys.clone(),
            depths: self.depths.clone(),
            runtimes: self.runtimes.clone(),
            by_key: OnceLock::new(),
            by_runtime: OnceLock::new(),
        }
    }
}

impl SnapIndex {
    /// Builds the core identity columns in one pass over the arena.
    ///
    /// Relies on the arena invariant that parents precede children
    /// (guaranteed by [`Snapshot::push`]).
    pub fn build(snap: &Snapshot) -> SnapIndex {
        let n = snap.len();
        let mut paths: Vec<Arc<str>> = Vec::with_capacity(n);
        let mut keys: Vec<ControlKey> = Vec::with_capacity(n);
        let mut depths: Vec<u32> = Vec::with_capacity(n);
        let mut runtimes: Vec<u64> = Vec::with_capacity(n);
        // The path each node's *children* inherit, built at most once per
        // parent and shared by all of its children.
        let mut child_paths: Vec<Option<Arc<str>>> = vec![None; n];
        let empty: Arc<str> = Arc::from("");

        for (idx, node) in snap.iter() {
            let (path, depth) = match node.parent {
                None => (empty.clone(), 0),
                Some(p) => {
                    debug_assert!(p < idx, "arena parents precede children");
                    let parent_path = child_paths[p].get_or_insert_with(|| {
                        let pp: &str = &paths[p];
                        let pname = display_name(&snap.node(p).props.name);
                        if pp.is_empty() {
                            Arc::from(pname)
                        } else {
                            let mut s = String::with_capacity(pp.len() + 1 + pname.len());
                            s.push_str(pp);
                            s.push('/');
                            s.push_str(pname);
                            Arc::from(s.as_str())
                        }
                    });
                    (parent_path.clone(), depths[p] + 1)
                }
            };
            keys.push(ControlKey::of_parts(
                node.props.primary_id(),
                node.props.control_type,
                &path,
            ));
            paths.push(path);
            depths.push(depth);
            runtimes.push(node.runtime_id.0);
        }

        SnapIndex {
            paths,
            keys,
            depths,
            runtimes,
            by_key: OnceLock::new(),
            by_runtime: OnceLock::new(),
        }
    }

    /// The cached ancestor path of a node (root-first, slash-delimited).
    pub fn path(&self, idx: usize) -> &str {
        &self.paths[idx]
    }

    /// The identity fingerprint of a node.
    pub fn key(&self, idx: usize) -> ControlKey {
        self.keys[idx]
    }

    /// The depth of a node (root = 0).
    pub fn depth(&self, idx: usize) -> usize {
        self.depths[idx] as usize
    }

    /// The `ControlKey -> arena indices` multimap, built on first use.
    ///
    /// Call this before a batch of keyed probes (e.g. the ripper probes
    /// once per post-click node); one O(n) build amortizes across them.
    /// Isolated probes are cheaper through [`SnapIndex::candidates`]'s
    /// scan path.
    pub fn key_multimap(&self) -> &KeyMap<ControlKey, Bucket> {
        self.by_key.get_or_init(|| {
            let mut map: KeyMap<ControlKey, Bucket> = KeyMap::default();
            map.reserve(self.keys.len());
            for (i, &k) in self.keys.iter().enumerate() {
                map.entry(k).and_modify(|b| b.push(i as u32)).or_insert(Bucket::One(i as u32));
            }
            map
        })
    }

    /// Arena indices whose fingerprint equals `key`, in arena order: O(1)
    /// through the multimap when built, otherwise a branch-free scan of
    /// the key column (no allocation — right for one-off probes).
    pub fn candidates(&self, key: ControlKey) -> Candidates<'_> {
        match self.by_key.get() {
            Some(map) => {
                Candidates::Indexed(map.get(&key).map(Bucket::as_slice).unwrap_or(&[]).iter())
            }
            None => Candidates::Scan { keys: &self.keys, key, pos: 0 },
        }
    }

    /// Whether the node at `idx` matches the identifier exactly
    /// (component-wise; uses the cached path, no allocation).
    pub fn matches(&self, snap: &Snapshot, idx: usize, id: &ControlId) -> bool {
        let props = &snap.node(idx).props;
        props.control_type == id.control_type
            && props.primary_id() == id.primary
            && *self.paths[idx] == *id.ancestor_path
    }

    /// Resolves an identifier to the first exactly matching arena index
    /// (arena order, matching the old linear scan's tie-break).
    pub fn resolve(&self, snap: &Snapshot, id: &ControlId) -> Option<usize> {
        let key = ControlKey::of_id(id);
        self.candidates(key).find(|&i| self.matches(snap, i, id))
    }

    /// The arena index carrying a runtime id (O(1); the table builds on
    /// the first lookup).
    pub fn index_of_runtime(&self, rt: RuntimeId) -> Option<usize> {
        let table = self.by_runtime.get_or_init(|| {
            let mut map: KeyMap<u64, u32> = KeyMap::default();
            map.reserve(self.runtimes.len());
            for (i, &r) in self.runtimes.iter().enumerate() {
                map.insert(r, i as u32);
            }
            map
        });
        table.get(&rt.0).map(|&i| i as usize)
    }

    /// Synthesizes the full identifier for a node from cached parts.
    pub fn control_id(&self, snap: &Snapshot, idx: usize) -> ControlId {
        let props = &snap.node(idx).props;
        ControlId {
            primary: props.primary_id().to_string(),
            control_type: props.control_type,
            ancestor_path: self.paths[idx].to_string(),
        }
    }
}

/// The name a node contributes to its descendants' ancestor paths.
fn display_name(name: &str) -> &str {
    if name.is_empty() {
        "[Unnamed]"
    } else {
        name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ControlProps, ControlType};

    fn sample() -> Snapshot {
        let mut s = Snapshot::new();
        let w = s.push(ControlProps::new("Main", ControlType::Window), None, 0);
        s.push_window_root(w);
        let tab = s.push(ControlProps::new("Home", ControlType::TabItem), Some(w), 0);
        let grp = s.push(ControlProps::new("", ControlType::Group), Some(tab), 0);
        s.push(ControlProps::new("Bold", ControlType::Button), Some(grp), 0);
        s.push(ControlProps::new("Italic", ControlType::Button), Some(grp), 0);
        s
    }

    #[test]
    fn paths_match_walked_ancestor_paths() {
        let s = sample();
        let ix = SnapIndex::build(&s);
        for (i, _) in s.iter() {
            assert_eq!(ix.path(i), s.ancestor_path(i), "node {i}");
        }
        // Unnamed ancestors appear as [Unnamed], exactly like the walk.
        assert_eq!(ix.path(3), "Main/Home/[Unnamed]");
    }

    #[test]
    fn sibling_paths_share_one_allocation() {
        let s = sample();
        let ix = SnapIndex::build(&s);
        assert!(Arc::ptr_eq(&ix.paths[3], &ix.paths[4]));
    }

    #[test]
    fn resolve_round_trips_every_node() {
        let s = sample();
        let ix = SnapIndex::build(&s);
        for (i, _) in s.iter() {
            let id = ix.control_id(&s, i);
            // Cold (scan) path.
            assert_eq!(ix.resolve(&s, &id), Some(i));
        }
        // Warm (multimap) path agrees.
        ix.key_multimap();
        for (i, _) in s.iter() {
            let id = ix.control_id(&s, i);
            assert_eq!(ix.resolve(&s, &id), Some(i));
        }
    }

    #[test]
    fn runtime_table_matches_linear_scan() {
        let mut s = sample();
        s.set_runtime_id(2, RuntimeId(77));
        let ix = SnapIndex::build(&s);
        assert_eq!(ix.index_of_runtime(RuntimeId(77)), Some(2));
        assert_eq!(ix.index_of_runtime(RuntimeId(999)), None);
    }

    #[test]
    fn duplicate_identities_resolve_to_first_in_arena_order() {
        let mut s = Snapshot::new();
        let w = s.push(ControlProps::new("W", ControlType::Window), None, 0);
        s.push_window_root(w);
        let a = s.push(ControlProps::new("OK", ControlType::Button), Some(w), 0);
        let b = s.push(ControlProps::new("OK", ControlType::Button), Some(w), 0);
        let ix = SnapIndex::build(&s);
        let id = ix.control_id(&s, a);
        assert_eq!(ix.resolve(&s, &id), Some(a));
        // Both duplicates surface as candidates, scan and indexed alike.
        assert_eq!(ix.candidates(ix.key(a)).collect::<Vec<_>>(), vec![a, b]);
        ix.key_multimap();
        assert_eq!(ix.candidates(ix.key(a)).collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(ix.resolve(&s, &id), Some(a));
    }

    #[test]
    fn depths_match_walks() {
        let s = sample();
        let ix = SnapIndex::build(&s);
        for (i, _) in s.iter() {
            assert_eq!(ix.depth(i), s.depth(i));
        }
    }
}
