//! Simulated accessibility framework modelled on Windows UI Automation (UIA).
//!
//! This crate is the substrate substitution for Windows UIA described in
//! `DESIGN.md`. It provides the exact surface that the DMI layer consumes:
//!
//! - the full set of 41 UIA [`ControlType`]s and 34 [`PatternKind`]s,
//! - property bags ([`ControlProps`]) with the same reliability caveats as
//!   real UIA (`automation_id` is *not* guaranteed unique and may be empty),
//! - immutable accessibility-tree snapshots ([`Snapshot`], [`Node`]),
//! - XPath-like control identifiers ([`ControlId`]) with fuzzy matching,
//!   resolved in O(1) through a per-snapshot identity index
//!   ([`SnapIndex`], [`ControlKey`] — see the [`index`] module for the
//!   hash+confirm design),
//! - structure-change events ([`UiaEvent`]).
//!
//! Applications (see `dmi-gui` / `dmi-apps`) produce snapshots; the DMI
//! layer (`dmi-core`) consumes them. Nothing in this crate mutates UI state;
//! it is a read-side protocol, exactly like UIA's client view.
//!
//! # Examples
//!
//! ```
//! use dmi_uia::{ControlType, PatternKind};
//!
//! assert_eq!(ControlType::ALL.len(), 41);
//! assert_eq!(PatternKind::ALL.len(), 34);
//! assert!(ControlType::Button.is_key_type());
//! ```

pub mod control_type;
pub mod error;
pub mod event;
pub mod ident;
pub mod index;
pub mod pattern;
pub mod props;
pub mod tree;

pub use control_type::ControlType;
pub use error::{UiaError, UiaResult};
pub use event::UiaEvent;
pub use ident::{ControlId, ControlIdSet, ControlKey, FuzzyMatcher, KeyMap, MatchScore};
pub use index::SnapIndex;
pub use pattern::{PatternKind, PatternSet};
pub use props::{ControlProps, Rect, RuntimeId, ToggleState};
pub use tree::{Node, NodeRef, Snapshot};
