//! The 34 UIA control patterns.
//!
//! A control advertises its interaction capabilities through a finite set of
//! control patterns (§2.2 Insight #3 of the paper). DMI's state and
//! observation declarations are built on top of these patterns (Table 2).

use serde::{Deserialize, Serialize};

/// A UIA control pattern kind.
///
/// Mirrors the official `UIA_*PatternId` list (34 patterns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PatternKind {
    Annotation,
    CustomNavigation,
    Dock,
    Drag,
    DropTarget,
    ExpandCollapse,
    Grid,
    GridItem,
    Invoke,
    ItemContainer,
    LegacyIAccessible,
    MultipleView,
    ObjectModel,
    RangeValue,
    Scroll,
    ScrollItem,
    Selection,
    Selection2,
    SelectionItem,
    Spreadsheet,
    SpreadsheetItem,
    Styles,
    SynchronizedInput,
    Table,
    TableItem,
    Text,
    Text2,
    TextChild,
    TextEdit,
    TextRange,
    Toggle,
    Transform,
    Transform2,
    Value,
}

impl PatternKind {
    /// All 34 control patterns.
    pub const ALL: [PatternKind; 34] = [
        PatternKind::Annotation,
        PatternKind::CustomNavigation,
        PatternKind::Dock,
        PatternKind::Drag,
        PatternKind::DropTarget,
        PatternKind::ExpandCollapse,
        PatternKind::Grid,
        PatternKind::GridItem,
        PatternKind::Invoke,
        PatternKind::ItemContainer,
        PatternKind::LegacyIAccessible,
        PatternKind::MultipleView,
        PatternKind::ObjectModel,
        PatternKind::RangeValue,
        PatternKind::Scroll,
        PatternKind::ScrollItem,
        PatternKind::Selection,
        PatternKind::Selection2,
        PatternKind::SelectionItem,
        PatternKind::Spreadsheet,
        PatternKind::SpreadsheetItem,
        PatternKind::Styles,
        PatternKind::SynchronizedInput,
        PatternKind::Table,
        PatternKind::TableItem,
        PatternKind::Text,
        PatternKind::Text2,
        PatternKind::TextChild,
        PatternKind::TextEdit,
        PatternKind::TextRange,
        PatternKind::Toggle,
        PatternKind::Transform,
        PatternKind::Transform2,
        PatternKind::Value,
    ];

    /// The UIA-style pattern name (e.g. `"ScrollPattern"`).
    pub fn as_str(self) -> &'static str {
        match self {
            PatternKind::Annotation => "AnnotationPattern",
            PatternKind::CustomNavigation => "CustomNavigationPattern",
            PatternKind::Dock => "DockPattern",
            PatternKind::Drag => "DragPattern",
            PatternKind::DropTarget => "DropTargetPattern",
            PatternKind::ExpandCollapse => "ExpandCollapsePattern",
            PatternKind::Grid => "GridPattern",
            PatternKind::GridItem => "GridItemPattern",
            PatternKind::Invoke => "InvokePattern",
            PatternKind::ItemContainer => "ItemContainerPattern",
            PatternKind::LegacyIAccessible => "LegacyIAccessiblePattern",
            PatternKind::MultipleView => "MultipleViewPattern",
            PatternKind::ObjectModel => "ObjectModelPattern",
            PatternKind::RangeValue => "RangeValuePattern",
            PatternKind::Scroll => "ScrollPattern",
            PatternKind::ScrollItem => "ScrollItemPattern",
            PatternKind::Selection => "SelectionPattern",
            PatternKind::Selection2 => "Selection2Pattern",
            PatternKind::SelectionItem => "SelectionItemPattern",
            PatternKind::Spreadsheet => "SpreadsheetPattern",
            PatternKind::SpreadsheetItem => "SpreadsheetItemPattern",
            PatternKind::Styles => "StylesPattern",
            PatternKind::SynchronizedInput => "SynchronizedInputPattern",
            PatternKind::Table => "TablePattern",
            PatternKind::TableItem => "TableItemPattern",
            PatternKind::Text => "TextPattern",
            PatternKind::Text2 => "Text2Pattern",
            PatternKind::TextChild => "TextChildPattern",
            PatternKind::TextEdit => "TextEditPattern",
            PatternKind::TextRange => "TextRangePattern",
            PatternKind::Toggle => "TogglePattern",
            PatternKind::Transform => "TransformPattern",
            PatternKind::Transform2 => "Transform2Pattern",
            PatternKind::Value => "ValuePattern",
        }
    }

    /// Parses the name produced by [`PatternKind::as_str`].
    pub fn parse(s: &str) -> Option<PatternKind> {
        PatternKind::ALL.iter().copied().find(|p| p.as_str() == s)
    }

    /// Bit position used by [`PatternSet`].
    fn bit(self) -> u64 {
        1u64 << (self as u32)
    }
}

impl std::fmt::Display for PatternKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A compact set of control patterns supported by one control.
///
/// Stored as a bitset; with 34 patterns a `u64` suffices.
///
/// # Examples
///
/// ```
/// use dmi_uia::{PatternKind, PatternSet};
///
/// let set = PatternSet::new().with(PatternKind::Scroll).with(PatternKind::Value);
/// assert!(set.supports(PatternKind::Scroll));
/// assert!(!set.supports(PatternKind::Toggle));
/// assert_eq!(set.iter().count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PatternSet(u64);

impl PatternSet {
    /// Creates an empty pattern set.
    pub fn new() -> Self {
        PatternSet(0)
    }

    /// Returns a copy of this set with `p` added (builder style).
    pub fn with(mut self, p: PatternKind) -> Self {
        self.insert(p);
        self
    }

    /// Adds a pattern to the set.
    pub fn insert(&mut self, p: PatternKind) {
        self.0 |= p.bit();
    }

    /// Removes a pattern from the set.
    pub fn remove(&mut self, p: PatternKind) {
        self.0 &= !p.bit();
    }

    /// Whether the control supports `p`.
    pub fn supports(&self, p: PatternKind) -> bool {
        self.0 & p.bit() != 0
    }

    /// Whether no pattern is supported.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over the supported patterns in id order.
    pub fn iter(&self) -> impl Iterator<Item = PatternKind> + '_ {
        PatternKind::ALL.into_iter().filter(|p| self.supports(*p))
    }

    /// Default patterns for a control type, mirroring what common UIA
    /// providers expose (e.g. buttons expose `Invoke`, scrollbars expose
    /// `RangeValue`).
    pub fn defaults_for(ct: crate::ControlType) -> PatternSet {
        use crate::ControlType as C;
        use PatternKind as P;
        let mut s = PatternSet::new();
        match ct {
            C::Button | C::SplitButton | C::Hyperlink | C::MenuItem | C::AppBar => {
                s.insert(P::Invoke);
            }
            C::CheckBox => {
                s.insert(P::Toggle);
            }
            C::RadioButton | C::ListItem | C::TabItem | C::TreeItem => {
                s.insert(P::SelectionItem);
            }
            C::ComboBox => {
                s.insert(P::ExpandCollapse);
                s.insert(P::Value);
            }
            C::Edit => {
                s.insert(P::Value);
                s.insert(P::Text);
            }
            C::Document => {
                s.insert(P::Text);
                s.insert(P::Scroll);
            }
            C::List | C::Tree | C::DataGrid | C::Calendar => {
                s.insert(P::Selection);
                s.insert(P::Scroll);
            }
            C::DataItem => {
                s.insert(P::SelectionItem);
                s.insert(P::Value);
                s.insert(P::GridItem);
                s.insert(P::TableItem);
            }
            C::ScrollBar => {
                s.insert(P::RangeValue);
            }
            C::Slider | C::Spinner | C::ProgressBar => {
                s.insert(P::RangeValue);
            }
            C::Table => {
                s.insert(P::Grid);
                s.insert(P::Table);
            }
            C::Tab => {
                s.insert(P::Selection);
            }
            C::Window => {
                s.insert(P::Transform);
            }
            C::Menu | C::MenuBar => {
                s.insert(P::ExpandCollapse);
            }
            C::Text => {
                s.insert(P::Text);
            }
            _ => {}
        }
        s
    }
}

impl FromIterator<PatternKind> for PatternSet {
    fn from_iter<T: IntoIterator<Item = PatternKind>>(iter: T) -> Self {
        let mut s = PatternSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ControlType;

    #[test]
    fn all_has_34_distinct_patterns() {
        let set: std::collections::BTreeSet<_> = PatternKind::ALL.into_iter().collect();
        assert_eq!(set.len(), 34);
    }

    #[test]
    fn parse_round_trips() {
        for p in PatternKind::ALL {
            assert_eq!(PatternKind::parse(p.as_str()), Some(p));
        }
        assert_eq!(PatternKind::parse("FooPattern"), None);
    }

    #[test]
    fn set_insert_remove() {
        let mut s = PatternSet::new();
        assert!(s.is_empty());
        s.insert(PatternKind::Toggle);
        assert!(s.supports(PatternKind::Toggle));
        s.remove(PatternKind::Toggle);
        assert!(!s.supports(PatternKind::Toggle));
    }

    #[test]
    fn defaults_are_sensible() {
        assert!(PatternSet::defaults_for(ControlType::Button).supports(PatternKind::Invoke));
        assert!(PatternSet::defaults_for(ControlType::ScrollBar).supports(PatternKind::RangeValue));
        assert!(PatternSet::defaults_for(ControlType::Edit).supports(PatternKind::Value));
        assert!(PatternSet::defaults_for(ControlType::DataItem).supports(PatternKind::Value));
    }

    #[test]
    fn from_iterator_collects() {
        let s: PatternSet = [PatternKind::Text, PatternKind::Scroll].into_iter().collect();
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn bitset_is_order_independent() {
        let a = PatternSet::new().with(PatternKind::Text).with(PatternKind::Value);
        let b = PatternSet::new().with(PatternKind::Value).with(PatternKind::Text);
        assert_eq!(a, b);
    }
}
