//! Control property bags and geometry.

use crate::{ControlType, PatternSet};
use serde::{Deserialize, Serialize};

/// A rectangle in virtual screen coordinates (pixels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rect {
    pub x: i32,
    pub y: i32,
    pub w: i32,
    pub h: i32,
}

impl Rect {
    /// Creates a rectangle from origin and size.
    pub fn new(x: i32, y: i32, w: i32, h: i32) -> Self {
        Rect { x, y, w, h }
    }

    /// The center point, used for simulated pointer input.
    pub fn center(&self) -> (i32, i32) {
        (self.x + self.w / 2, self.y + self.h / 2)
    }

    /// Whether the point lies inside the rectangle.
    pub fn contains(&self, px: i32, py: i32) -> bool {
        px >= self.x && px < self.x + self.w && py >= self.y && py < self.y + self.h
    }

    /// The intersection with another rectangle, or `None` if disjoint.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x1 = self.x.max(other.x);
        let y1 = self.y.max(other.y);
        let x2 = (self.x + self.w).min(other.x + other.w);
        let y2 = (self.y + self.h).min(other.y + other.h);
        if x2 > x1 && y2 > y1 {
            Some(Rect::new(x1, y1, x2 - x1, y2 - y1))
        } else {
            None
        }
    }

    /// Whether the rectangle has zero area.
    pub fn is_empty(&self) -> bool {
        self.w <= 0 || self.h <= 0
    }
}

/// Runtime identifier for a live control instance.
///
/// Like UIA runtime ids, these are unique within a snapshot but *not*
/// stable across application restarts or even across UI rebuilds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RuntimeId(pub u64);

impl std::fmt::Display for RuntimeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rt:{}", self.0)
    }
}

/// Toggle state for `TogglePattern` controls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ToggleState {
    Off,
    On,
    Indeterminate,
}

/// The property bag exposed for one control, mirroring the UIA property
/// system.
///
/// Caveats faithfully reproduced from real UIA (and exploited by the
/// robustness tests): `automation_id` may be empty and is not guaranteed
/// globally unique; `name` may vary between snapshots (localization, state
/// suffixes); `help_text` is frequently missing.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ControlProps {
    /// UIA `AutomationId`; possibly empty, not guaranteed unique.
    pub automation_id: String,
    /// UIA `Name`; human-readable label.
    pub name: String,
    /// Control type.
    pub control_type: ControlType,
    /// Provider class name (e.g. `"NetUIRibbonButton"`).
    pub class_name: String,
    /// UIA `HelpText` / full description; often empty.
    pub help_text: String,
    /// Supported control patterns.
    pub patterns: PatternSet,
    /// Whether the control is enabled.
    pub enabled: bool,
    /// Whether the control is scrolled or clipped out of view.
    pub offscreen: bool,
    /// UIA `Value.Value` (edit/cell content) when the Value pattern exists.
    pub value: String,
    /// Toggle state when the Toggle pattern exists.
    pub toggle: Option<ToggleState>,
    /// Selected state when the SelectionItem pattern exists.
    pub selected: bool,
    /// Expanded state when the ExpandCollapse pattern exists.
    pub expanded: Option<bool>,
    /// Bounding rectangle in virtual screen coordinates.
    pub rect: Rect,
    /// Keyboard-focusable.
    pub focusable: bool,
}

// `ControlProps::default` needs a default control type; Custom matches
// what providers report for unknown widgets.
#[allow(clippy::derivable_impls)]
impl Default for ControlType {
    fn default() -> Self {
        ControlType::Custom
    }
}

impl ControlProps {
    /// Creates a property bag with type defaults for patterns.
    pub fn new(name: impl Into<String>, control_type: ControlType) -> Self {
        ControlProps {
            automation_id: String::new(),
            name: name.into(),
            control_type,
            class_name: String::new(),
            help_text: String::new(),
            patterns: PatternSet::defaults_for(control_type),
            enabled: true,
            offscreen: false,
            value: String::new(),
            toggle: None,
            selected: false,
            expanded: None,
            rect: Rect::default(),
            focusable: true,
        }
    }

    /// The primary identifier component (§4.1): `automation_id`, falling
    /// back to `name`, falling back to `"[Unnamed]"`.
    pub fn primary_id(&self) -> &str {
        if !self.automation_id.is_empty() {
            &self.automation_id
        } else if !self.name.is_empty() {
            &self.name
        } else {
            "[Unnamed]"
        }
    }

    /// Whether the control is interactable right now.
    pub fn is_actionable(&self) -> bool {
        self.enabled && !self.offscreen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_center_and_contains() {
        let r = Rect::new(10, 20, 100, 50);
        let (cx, cy) = r.center();
        assert!(r.contains(cx, cy));
        assert!(!r.contains(9, 20));
        assert!(!r.contains(110, 20));
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersect(&b), Some(Rect::new(5, 5, 5, 5)));
        let c = Rect::new(20, 20, 5, 5);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn primary_id_fallback_chain() {
        let mut p = ControlProps::new("Save", ControlType::Button);
        p.automation_id = "FileSave".into();
        assert_eq!(p.primary_id(), "FileSave");
        p.automation_id.clear();
        assert_eq!(p.primary_id(), "Save");
        p.name.clear();
        assert_eq!(p.primary_id(), "[Unnamed]");
    }

    #[test]
    fn new_assigns_default_patterns() {
        let p = ControlProps::new("OK", ControlType::Button);
        assert!(p.patterns.supports(crate::PatternKind::Invoke));
    }

    #[test]
    fn actionable_requires_enabled_and_onscreen() {
        let mut p = ControlProps::new("OK", ControlType::Button);
        assert!(p.is_actionable());
        p.enabled = false;
        assert!(!p.is_actionable());
        p.enabled = true;
        p.offscreen = true;
        assert!(!p.is_actionable());
    }
}
