//! Immutable accessibility-tree snapshots.
//!
//! A [`Snapshot`] is what a UIA client sees when it walks the tree at one
//! instant: an arena of [`Node`]s with parent/child links. Applications
//! produce a fresh snapshot after every input event; the DMI executor and
//! the GUI ripper both operate exclusively on snapshots, which mirrors how
//! real accessibility clients are decoupled from the provider process.

use crate::index::{IndexSeed, SnapIndex};
use crate::{ControlId, ControlKey, ControlProps, ControlType, PatternKind, Rect, RuntimeId};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex, OnceLock};

/// One control in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Snapshot-unique runtime id.
    pub runtime_id: RuntimeId,
    /// Property bag.
    pub props: ControlProps,
    /// Index of the parent node in the arena, `None` for roots.
    pub parent: Option<usize>,
    /// Indices of child nodes, in z/document order.
    pub children: Vec<usize>,
    /// Index of the top-level window this node belongs to.
    pub window: usize,
}

/// An immutable snapshot of the accessibility tree for a desktop.
///
/// Node index 0.. are arena indices; `windows` lists the arena index of each
/// top-level window root in z-order (last = topmost), mirroring UIA's
/// desktop children.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Snapshot {
    nodes: Vec<Node>,
    windows: Vec<usize>,
    /// Modality flag per entry of `windows`.
    #[serde(default)]
    modal: Vec<bool>,
    /// Lazily built identity index (see [`SnapIndex`]); invalidated by any
    /// mutation, never serialized or compared.
    #[serde(skip)]
    index: OnceLock<Arc<SnapIndex>>,
    /// Carry-forward seeds for ranges copied verbatim from donor
    /// snapshots (see [`Snapshot::seed_index_window`]); drained — and the
    /// donor indexes they pin released — when the identity index
    /// materializes. Never serialized or compared. (A `Mutex` only so the
    /// shared-`&self` index build can take them; never contended.)
    #[serde(skip)]
    index_seeds: Mutex<Vec<IndexSeed>>,
}

impl Clone for Snapshot {
    fn clone(&self) -> Snapshot {
        Snapshot {
            nodes: self.nodes.clone(),
            windows: self.windows.clone(),
            modal: self.modal.clone(),
            index: self.index.clone(),
            index_seeds: Mutex::new(self.index_seeds.lock().unwrap().clone()),
        }
    }
}

// Equality ignores the derived identity cache.
impl PartialEq for Snapshot {
    fn eq(&self, other: &Snapshot) -> bool {
        self.nodes == other.nodes && self.windows == other.windows && self.modal == other.modal
    }
}

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Adds a node and returns its arena index.
    ///
    /// `parent` must be an index previously returned by `push`.
    pub fn push(&mut self, props: ControlProps, parent: Option<usize>, window: usize) -> usize {
        self.index.take();
        let idx = self.nodes.len();
        let runtime_id = RuntimeId(idx as u64 + 1);
        self.nodes.push(Node { runtime_id, props, parent, children: Vec::new(), window });
        if let Some(p) = parent {
            self.nodes[p].children.push(idx);
        }
        idx
    }

    /// Appends a copy of the node range `start..end` from another snapshot,
    /// remapping parent/child indices and retagging the nodes with the
    /// given top-level `window` ordinal. Returns the arena index of the
    /// first copied node (the subtree root when the range is one window's
    /// contiguous DFS block).
    ///
    /// Providers that rebuild snapshots incrementally use this to carry an
    /// unchanged window's subtree — rectangles, runtime ids, and all —
    /// from the previous capture instead of re-walking the widget tree.
    /// The range must be self-contained: every in-range node's parent is
    /// either in range or `None`, as is the case for the contiguous block
    /// a window's DFS emits.
    pub fn append_window_from(
        &mut self,
        src: &Snapshot,
        start: usize,
        end: usize,
        window: usize,
    ) -> usize {
        self.index.take();
        let base = self.nodes.len();
        for i in start..end {
            let n = &src.nodes[i];
            debug_assert!(
                n.parent.is_none_or(|p| (start..end).contains(&p)),
                "copied window range must be self-contained"
            );
            self.nodes.push(Node {
                runtime_id: n.runtime_id,
                props: n.props.clone(),
                parent: n.parent.map(|p| p - start + base),
                children: n.children.iter().map(|&c| c - start + base).collect(),
                window,
            });
        }
        base
    }

    /// Registers a node as a top-level window root (z-order append).
    pub fn push_window_root(&mut self, idx: usize) {
        self.windows.push(idx);
        self.modal.push(false);
    }

    /// Registers a modal window root (blocks input to windows below it).
    pub fn push_modal_window_root(&mut self, idx: usize) {
        self.windows.push(idx);
        self.modal.push(true);
    }

    /// Whether the `i`-th window (ordinal in [`Snapshot::windows`]) is
    /// modal.
    pub fn window_is_modal(&self, i: usize) -> bool {
        self.modal.get(i).copied().unwrap_or(false)
    }

    /// The ordinal of the topmost modal window, if any.
    pub fn top_modal_window(&self) -> Option<usize> {
        (0..self.windows.len()).rev().find(|&i| self.window_is_modal(i))
    }

    /// Whether a node can receive input right now: no modal window sits
    /// above its window in the z-order.
    pub fn is_available(&self, idx: usize) -> bool {
        match self.top_modal_window() {
            Some(m) => self.nodes[idx].window >= m,
            None => true,
        }
    }

    /// Overrides the runtime id of a node (providers that derive runtime
    /// ids from their own widget identity use this after `push`).
    pub fn set_runtime_id(&mut self, idx: usize, rt: RuntimeId) {
        self.index.take();
        // A rewritten runtime id falsifies any seed covering the node.
        self.index_seeds.get_mut().unwrap().retain(|s| !(s.start..s.end).contains(&idx));
        self.nodes[idx].runtime_id = rt;
    }

    /// Registers a carry-forward seed for the identity index: the arena
    /// range `start..end` of *this* snapshot is a verbatim copy (as made
    /// by [`Snapshot::append_window_from`]) of the donor range starting at
    /// `donor_start` in the snapshot whose materialized index is `donor`.
    /// When this snapshot's index is built, the seeded range's path
    /// `Arc`s and key/depth/runtime columns are spliced from the donor
    /// instead of recomputed, so only unseeded (dirty) ranges pay
    /// construction cost.
    ///
    /// Ranges must be registered in ascending, non-overlapping order —
    /// the natural order of incremental window-by-window assembly. A
    /// range that is not a self-contained verbatim copy would corrupt the
    /// index; `append_window_from` ranges satisfy this by construction.
    pub fn seed_index_window(
        &mut self,
        start: usize,
        end: usize,
        donor: Arc<SnapIndex>,
        donor_start: usize,
    ) {
        debug_assert!(start <= end && end <= self.nodes.len());
        let seeds = self.index_seeds.get_mut().unwrap();
        debug_assert!(seeds.last().is_none_or(|s| s.end <= start), "seeds in order");
        if start < end {
            seeds.push(IndexSeed { start, end, donor, donor_start });
        }
    }

    /// The snapshot's identity index, built on first use (O(n) — or less
    /// when carry-forward seeds splice donor columns for unchanged
    /// windows) and O(1) to query thereafter. See [`SnapIndex`] for the
    /// design.
    pub fn index(&self) -> &SnapIndex {
        self.index.get_or_init(|| {
            // Drain the seeds: once the index exists they are useless,
            // and holding them would pin the donor indexes in memory for
            // this snapshot's lifetime.
            let seeds = std::mem::take(&mut *self.index_seeds.lock().unwrap());
            Arc::new(SnapIndex::build_with_seeds(self, &seeds))
        })
    }

    /// The identity index, only if it has already materialized — donors
    /// hand their index to [`Snapshot::seed_index_window`] through this
    /// (splicing must never *force* a donor build it would otherwise
    /// skip).
    pub fn index_if_built(&self) -> Option<Arc<SnapIndex>> {
        self.index.get().cloned()
    }

    /// Finds the arena index of the node carrying the given runtime id
    /// (O(1) via the identity index).
    pub fn index_of_runtime(&self, rt: RuntimeId) -> Option<usize> {
        self.index().index_of_runtime(rt)
    }

    /// Synthesizes the control identifier of a node from cached parts.
    pub fn control_id(&self, idx: usize) -> ControlId {
        self.index().control_id(self, idx)
    }

    /// The 64-bit identity fingerprint of a node.
    pub fn control_key(&self, idx: usize) -> ControlKey {
        self.index().key(idx)
    }

    /// Resolves a control identifier to the first exactly matching node in
    /// arena order, O(1) via the identity index (with collision confirm).
    pub fn resolve(&self, id: &ControlId) -> Option<usize> {
        self.index().resolve(self, id)
    }

    /// Whether `idx` lies in the subtree rooted at `root` (inclusive).
    pub fn is_in_subtree(&self, idx: usize, root: usize) -> bool {
        let mut cur = Some(idx);
        while let Some(i) = cur {
            if i == root {
                return true;
            }
            cur = self.nodes[i].parent;
        }
        false
    }

    /// Number of nodes in the snapshot.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the snapshot has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node by arena index.
    pub fn node(&self, idx: usize) -> &Node {
        &self.nodes[idx]
    }

    /// Arena indices of top-level window roots, bottom to top.
    pub fn windows(&self) -> &[usize] {
        &self.windows
    }

    /// Arena index of the topmost window root, if any.
    pub fn top_window(&self) -> Option<usize> {
        self.windows.last().copied()
    }

    /// Iterates over all nodes with their indices.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Node)> {
        self.nodes.iter().enumerate()
    }

    /// Depth-first pre-order traversal below `root` (inclusive).
    pub fn descendants(&self, root: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(i) = stack.pop() {
            out.push(i);
            // Push children reversed so traversal is document-order.
            for &c in self.nodes[i].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The chain of ancestor indices from `idx` (exclusive) up to the root.
    pub fn ancestors(&self, idx: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.nodes[idx].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes[p].parent;
        }
        out
    }

    /// Slash-delimited ancestor path of names, root-first (§4.1).
    ///
    /// Served from the identity index cache; use
    /// [`SnapIndex::path`] (via [`Snapshot::index`]) to borrow the cached
    /// string without this method's allocation.
    pub fn ancestor_path(&self, idx: usize) -> String {
        self.index().path(idx).to_string()
    }

    /// The depth of a node (root = 0).
    pub fn depth(&self, idx: usize) -> usize {
        self.ancestors(idx).len()
    }

    /// Finds all nodes matching a predicate.
    pub fn find_all(&self, mut pred: impl FnMut(&Node) -> bool) -> Vec<usize> {
        self.iter().filter(|(_, n)| pred(n)).map(|(i, _)| i).collect()
    }

    /// Finds the first node whose name equals `name`.
    pub fn find_by_name(&self, name: &str) -> Option<usize> {
        self.iter().find(|(_, n)| n.props.name == name).map(|(i, _)| i)
    }

    /// Finds the first node with the given name under a specific window root.
    pub fn find_by_name_in_window(&self, window_root: usize, name: &str) -> Option<usize> {
        self.descendants(window_root).into_iter().find(|&i| self.nodes[i].props.name == name)
    }

    /// All nodes of a control type.
    pub fn find_by_type(&self, ct: ControlType) -> Vec<usize> {
        self.find_all(|n| n.props.control_type == ct)
    }

    /// All actionable (enabled, on-screen) nodes supporting a pattern.
    pub fn actionable_with_pattern(&self, p: PatternKind) -> Vec<usize> {
        self.find_all(|n| n.props.is_actionable() && n.props.patterns.supports(p))
    }

    /// The deepest node whose rectangle contains the point, searching the
    /// topmost window first (hit testing for simulated pointer input).
    ///
    /// A single O(n) DFS per window: depth rides on the traversal stack
    /// instead of being recomputed by an ancestor walk per contained node.
    pub fn hit_test(&self, x: i32, y: i32) -> Option<usize> {
        for &w in self.windows.iter().rev() {
            let mut best: Option<(usize, usize)> = None; // (idx, depth)
            let mut stack: Vec<(usize, usize)> = vec![(w, 0)]; // (idx, depth)
            while let Some((i, d)) = stack.pop() {
                let n = &self.nodes[i];
                if !n.props.offscreen
                    && n.props.rect.contains(x, y)
                    && best.is_none_or(|(_, bd)| d >= bd)
                {
                    best = Some((i, d));
                }
                // Push children reversed so traversal is document-order,
                // matching `descendants` (ties prefer later document order
                // at equal depth).
                for &c in n.children.iter().rev() {
                    stack.push((c, d + 1));
                }
            }
            if let Some((i, _)) = best {
                return Some(i);
            }
        }
        None
    }

    /// Convenience view over one node.
    pub fn node_ref(&self, idx: usize) -> NodeRef<'_> {
        NodeRef { snap: self, idx }
    }

    /// The visible bounding rect of the snapshot's topmost window.
    pub fn top_window_rect(&self) -> Option<Rect> {
        self.top_window().map(|w| self.nodes[w].props.rect)
    }
}

/// A borrowed view of one node plus its snapshot, for ergonomic navigation.
#[derive(Debug, Clone, Copy)]
pub struct NodeRef<'a> {
    snap: &'a Snapshot,
    idx: usize,
}

impl<'a> NodeRef<'a> {
    /// The arena index.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// The underlying node.
    pub fn node(&self) -> &'a Node {
        self.snap.node(self.idx)
    }

    /// The property bag.
    pub fn props(&self) -> &'a ControlProps {
        &self.snap.node(self.idx).props
    }

    /// Parent view, if any.
    pub fn parent(&self) -> Option<NodeRef<'a>> {
        self.node().parent.map(|p| NodeRef { snap: self.snap, idx: p })
    }

    /// Child views.
    pub fn children(&self) -> impl Iterator<Item = NodeRef<'a>> + '_ {
        self.node().children.iter().map(move |&c| NodeRef { snap: self.snap, idx: c })
    }

    /// Whether this node has no children in the snapshot.
    pub fn is_leaf(&self) -> bool {
        self.node().children.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ControlProps;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new();
        let w = s.push(ControlProps::new("Main", ControlType::Window), None, 0);
        s.push_window_root(w);
        let tab = s.push(ControlProps::new("Home", ControlType::TabItem), Some(w), 0);
        let grp = s.push(ControlProps::new("Font", ControlType::Group), Some(tab), 0);
        let mut bold = ControlProps::new("Bold", ControlType::Button);
        bold.rect = Rect::new(10, 10, 20, 20);
        s.push(bold, Some(grp), 0);
        s
    }

    #[test]
    fn push_links_parent_and_children() {
        let s = sample();
        assert_eq!(s.len(), 4);
        assert_eq!(s.node(0).children, vec![1]);
        assert_eq!(s.node(3).parent, Some(2));
    }

    #[test]
    fn descendants_pre_order() {
        let s = sample();
        assert_eq!(s.descendants(0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn ancestor_path_is_root_first() {
        let s = sample();
        assert_eq!(s.ancestor_path(3), "Main/Home/Font");
        assert_eq!(s.ancestor_path(0), "");
    }

    #[test]
    fn depth_counts_ancestors() {
        let s = sample();
        assert_eq!(s.depth(0), 0);
        assert_eq!(s.depth(3), 3);
    }

    #[test]
    fn find_by_name_and_type() {
        let s = sample();
        assert_eq!(s.find_by_name("Bold"), Some(3));
        assert_eq!(s.find_by_type(ControlType::Group), vec![2]);
    }

    #[test]
    fn hit_test_finds_deepest() {
        let mut s = sample();
        // Give ancestors enclosing rects.
        for i in 0..3 {
            s.nodes[i].props.rect = Rect::new(0, 0, 100, 100);
        }
        assert_eq!(s.hit_test(15, 15), Some(3));
        assert_eq!(s.hit_test(90, 90), Some(2));
        assert_eq!(s.hit_test(500, 500), None);
    }

    #[test]
    fn node_ref_navigation() {
        let s = sample();
        let r = s.node_ref(3);
        assert!(r.is_leaf());
        assert_eq!(r.parent().unwrap().props().name, "Font");
        assert_eq!(s.node_ref(0).children().count(), 1);
    }

    #[test]
    fn runtime_ids_unique() {
        let s = sample();
        let mut ids: Vec<_> = s.iter().map(|(_, n)| n.runtime_id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), s.len());
    }
}
