//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the bench targets use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` / `measurement_time` accepted), `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a simple
//! warmup + timed-samples loop reporting min/median/mean per iteration —
//! adequate for the relative comparisons the PR bodies quote, with none of
//! the real crate's statistical machinery.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Per-iteration timing collector passed to `iter` closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Runs the routine repeatedly and records per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup and batch-size calibration: target ~1ms per batch so cheap
        // routines are timed in aggregate.
        let warmup_start = Instant::now();
        let mut iters_in: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters_in {
                std_black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_in >= 1 << 20 {
                break;
            }
            iters_in *= 2;
            if warmup_start.elapsed() > Duration::from_millis(500) {
                break;
            }
        }
        let deadline = Instant::now() + self.measurement_time;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_in {
                std_black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters_in as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn report(name: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!("{name:<44} time: [{} {} {}]", fmt_time(min), fmt_time(median), fmt_time(mean));
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    /// Substring filters from the command line (`cargo bench -- <name>`),
    /// matching the real crate's positional-filter behavior. Empty = run
    /// everything. Flag-like arguments (cargo passes `--bench`) are
    /// ignored.
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters =
            std::env::args().skip(1).filter(|a| !a.starts_with('-') && !a.is_empty()).collect();
        Criterion { sample_size: 30, measurement_time: Duration::from_secs(2), filters }
    }
}

impl Criterion {
    /// Configures the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Configures the measurement-time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Whether a benchmark's full name passes the CLI filters.
    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if !self.matches(name) {
            return self;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        report(name, &mut b.samples);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        if self.filters.is_empty() {
            println!("group: {name}");
        }
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            parent: self,
        }
    }
}

/// A group of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    measurement_time: Duration,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Configures the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Configures the measurement-time budget per benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{name}", self.prefix);
        if !self.parent.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        report(&full, &mut b.samples);
        self
    }

    /// Ends the group (output is flushed eagerly; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
