//! Offline stand-in for the `proptest` crate.
//!
//! Runs each property over deterministic pseudo-random cases (seeded per
//! case index, so failures reproduce across runs) with the strategy surface
//! this workspace uses: integer ranges, regex-lite string patterns, tuples,
//! `Just`, `prop_flat_map` / `prop_map`, and `collection::vec`. A failing
//! case is minimized before it is reported: the runner greedily applies
//! each strategy's shrink candidates (integer bisection toward the range
//! start, vec prefix/element removal, component-wise tuple shrinking —
//! `prop_map`/`prop_flat_map` values are atomic) while the failure
//! persists, then re-runs the minimal case unprotected so the original
//! assertion message names the smallest known failing input.

pub mod strategy;
pub mod test_runner;

/// Collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy for `Vec`s whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// The common imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a property holds for the sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts two values are equal for the sampled case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Declares property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __strat = ($(($strat),)+);
                // True when the property holds for one (cloned) input
                // tuple; panics are contained so the shrinker can probe.
                // `property_fn` anchors the argument to the strategy's
                // value type so the patterns bind concretely.
                let __holds = $crate::test_runner::property_fn(&__strat, |__vals| {
                    let ($($pat,)+) = ::std::clone::Clone::clone(__vals);
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body)).is_ok()
                });
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::case_rng(stringify!($name), __case);
                    let __vals = $crate::strategy::Strategy::sample(&__strat, &mut __rng);
                    if __holds(&__vals) {
                        continue;
                    }
                    // Minimize quietly (the probe panics are expected),
                    // then re-run the minimal case unprotected so the
                    // original assertion surfaces.
                    let __hook = ::std::panic::take_hook();
                    ::std::panic::set_hook(::std::boxed::Box::new(|_| {}));
                    let __min = $crate::test_runner::shrink_failure(&__strat, __vals, 1024, |v| {
                        !__holds(v)
                    });
                    ::std::panic::set_hook(__hook);
                    ::std::eprintln!(
                        "proptest: {} case {} failed; minimal failing input: {:?}",
                        stringify!($name),
                        __case,
                        &__min
                    );
                    let ($($pat,)+) = __min;
                    $body
                    ::std::unreachable!("the shrunken case stopped failing when re-run");
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}
