//! Offline stand-in for the `proptest` crate.
//!
//! Runs each property over deterministic pseudo-random cases (seeded per
//! case index, so failures reproduce across runs) with the strategy surface
//! this workspace uses: integer ranges, regex-lite string patterns, tuples,
//! `Just`, `prop_flat_map` / `prop_map`, and `collection::vec`. No
//! shrinking: a failing case panics with the sampled inputs left to the
//! assertion message.

pub mod strategy;
pub mod test_runner;

/// Collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy for `Vec`s whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// The common imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a property holds for the sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts two values are equal for the sampled case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Declares property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::case_rng(stringify!($name), __case);
                    $(
                        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}
