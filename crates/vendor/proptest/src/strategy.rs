//! Value-generation strategies with minimal shrinking (integer bisection,
//! vec prefix/element removal, component-wise tuple shrinking — no value
//! trees).

use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::Range;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, most aggressive
    /// first. The default — no candidates — marks the value atomic
    /// (strings, mapped values). The runner greedily re-tests candidates
    /// (see `test_runner::shrink_failure`), so offering `[minimum,
    /// midpoint, ...]` here yields logarithmic bisection overall.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// A strategy that feeds sampled values into `f` and samples the
    /// strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// A strategy that maps sampled values through `f`.
    fn prop_map<T, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        MapStrategy { base: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
            /// Bisects toward the range start: candidates halve the gap
            /// to `value` (`start`, midpoint, three-quarter point, ...,
            /// `value - 1`), so the greedy runner binary-searches the
            /// smallest failing value in O(log²) probes.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (lo, v) = (self.start, *value);
                let mut out = Vec::new();
                let mut c = lo;
                while c < v {
                    out.push(c);
                    let step = (v - c) / 2;
                    if step == 0 {
                        break;
                    }
                    c += step;
                }
                out
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        let inner = (self.f)(self.base.sample(rng));
        inner.sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        let n = if self.len.is_empty() { self.len.start } else { rng.gen_range(self.len.clone()) };
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
    /// Delta-debug style: drop the second half / keep the prefix, then
    /// drop single elements, then shrink elements in place — never going
    /// below the length range's start.
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let (min, n) = (self.len.start, value.len());
        let mut out = Vec::new();
        if n > min {
            let half = (n / 2).max(min);
            if half < n {
                out.push(value[..half].to_vec());
                out.push(value[n - half..].to_vec());
            }
            for i in 0..n {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        for (i, el) in value.iter().enumerate() {
            for s in self.element.shrink(el) {
                let mut v = value.clone();
                v[i] = s;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+)
        where
            $($t::Value: Clone),+
        {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
            /// Shrinks one component at a time, holding the others fixed.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for s in self.$n.shrink(&value.$n) {
                        let mut v = value.clone();
                        v.$n = s;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ------------------------------------------------------------ regex-lite

/// One atom of a regex-lite pattern.
enum Atom {
    /// `.` — any printable ASCII character.
    Any,
    /// `[...]` — one of an explicit set.
    Class(Vec<char>),
    /// A literal character.
    Lit(char),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Parses the regex-lite subset: atoms `.`/`[class]`/literal with optional
/// `{m}` / `{m,n}` repetition. Character classes support ranges (`a-z`)
/// and literal members; negation and alternation are not supported.
fn parse_pattern(pat: &str) -> Vec<Piece> {
    let chars: Vec<char> = pat.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated character class in `{pat}`");
                i += 1; // `]`
                Atom::Class(set)
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "trailing escape in `{pat}`");
                i += 2;
                Atom::Lit(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repetition in `{pat}`"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("repetition min"),
                    n.trim().parse().expect("repetition max"),
                ),
                None => {
                    let m: usize = body.trim().parse().expect("repetition count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut SmallRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = if piece.min == piece.max {
                piece.min
            } else {
                rng.gen_range(piece.min..piece.max + 1)
            };
            for _ in 0..n {
                match &piece.atom {
                    Atom::Any => out.push((rng.gen_range(0x20u32..0x7f) as u8) as char),
                    Atom::Class(set) => out.push(set[rng.gen_range(0..set.len())]),
                    Atom::Lit(c) => out.push(*c),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn regex_lite_respects_bounds() {
        let mut rng = case_rng("regex_lite", 0);
        for _ in 0..200 {
            let s = "[a-z]{1,10}".sample(&mut rng);
            assert!((1..=10).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = ".{0,40}".sample(&mut rng);
            assert!(t.len() <= 40);
            let u = "[a-zA-Z0-9 /]{0,40}".sample(&mut rng);
            assert!(u.chars().all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '/'));
        }
    }

    #[test]
    fn integer_shrink_bisects_to_the_minimal_failing_value() {
        // Property under test: `v < 500`; smallest failing value is 500.
        let strat = 0u32..1000;
        let min = crate::test_runner::shrink_failure(&strat, 873, 512, |v| *v >= 500);
        assert_eq!(min, 500);
        // An already-minimal value offers no failing candidate.
        let stay = crate::test_runner::shrink_failure(&strat, 500, 512, |v| *v >= 500);
        assert_eq!(stay, 500);
    }

    #[test]
    fn vec_shrink_removes_irrelevant_elements() {
        let strat = crate::collection::vec(0usize..100, 0..20);
        let min = crate::test_runner::shrink_failure(&strat, vec![3, 97, 12, 42, 8], 512, |v| {
            v.contains(&42)
        });
        assert_eq!(min, vec![42]);
    }

    #[test]
    fn vec_shrink_respects_the_length_floor() {
        let strat = crate::collection::vec(0usize..10, 2..6);
        let min = crate::test_runner::shrink_failure(&strat, vec![5, 7, 9], 512, |_| true);
        assert_eq!(min, vec![0, 0], "everything fails: shrink to the smallest legal vec");
    }

    #[test]
    fn tuple_shrink_minimizes_components_independently() {
        let strat = (0u32..50, 0u32..50);
        let min =
            crate::test_runner::shrink_failure(&strat, (31, 44), 512, |&(a, b)| a >= 10 && b >= 20);
        assert_eq!(min, (10, 20));
    }

    #[test]
    fn flat_map_and_vec_compose() {
        let mut rng = case_rng("flat_map", 1);
        let strat = (2usize..10)
            .prop_flat_map(|n| (Just(n), crate::collection::vec((0..n, 0..n), 0..n * 3)));
        for _ in 0..100 {
            let (n, edges) = strat.sample(&mut rng);
            assert!((2..10).contains(&n));
            assert!(edges.len() < n * 3);
            assert!(edges.iter().all(|&(a, b)| a < n && b < n));
        }
    }
}
