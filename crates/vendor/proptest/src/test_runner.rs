//! Case configuration and deterministic per-case RNG derivation.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Pins a property-closure's argument type to `&S::Value` for the given
/// strategy. Purely a type anchor for the `proptest!` expansion: without
/// it, the closure's `&_` argument would be inferred from how the bound
/// patterns are *used* in the property body (where a `Vec` read through
/// `&v[..]` infers as an unsized slice); anchoring to the strategy's
/// associated type makes the bound patterns concrete at definition time.
pub fn property_fn<S, F>(_strat: &S, f: F) -> F
where
    S: crate::strategy::Strategy,
    F: Fn(&S::Value) -> bool,
{
    f
}

/// Greedily minimizes a failing value: repeatedly replaces it with the
/// first shrink candidate that still fails, stopping when no candidate
/// fails or `budget` trials are spent. With the bisection/removal
/// candidates the built-in strategies offer, the greedy walk converges
/// logarithmically for integers and near-linearly for vec lengths.
pub fn shrink_failure<S: crate::strategy::Strategy>(
    strat: &S,
    mut value: S::Value,
    mut budget: u32,
    still_fails: impl Fn(&S::Value) -> bool,
) -> S::Value {
    'outer: loop {
        for cand in strat.shrink(&value) {
            if budget == 0 {
                return value;
            }
            budget -= 1;
            if still_fails(&cand) {
                value = cand;
                continue 'outer;
            }
        }
        return value;
    }
}

/// Derives the deterministic RNG for one (test, case) pair.
pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    SmallRng::seed_from_u64(h)
}
