//! Case configuration and deterministic per-case RNG derivation.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Derives the deterministic RNG for one (test, case) pair.
pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    SmallRng::seed_from_u64(h)
}
