//! Offline stand-in for the `rand` crate.
//!
//! Provides the deterministic subset this workspace uses: a seedable
//! [`rngs::SmallRng`] (xoshiro256++ seeded via splitmix64, matching the
//! algorithm family of the real crate's `SmallRng` on 64-bit targets) and
//! the [`Rng::gen`] / [`Rng::gen_range`] surface. Determinism within this
//! workspace is what matters; bit-compatibility with upstream is not
//! claimed.

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample(rng) * (high - low)
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Samples a bool with the given probability of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++, as the real crate's
    /// 64-bit `SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 expansion, as the reference implementation seeds.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ output function, as rand 0.8's 64-bit SmallRng.
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let u = r.gen_range(0..5usize);
            assert!(u < 5);
        }
    }
}
