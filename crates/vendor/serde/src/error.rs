//! Serialization/deserialization error type shared by the stub stack.

use crate::Value;

/// An error produced while converting between Rust values, [`Value`]s, and
/// JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn msg(message: impl Into<String>) -> Error {
        Error { message: message.into() }
    }

    /// Creates a type-mismatch error.
    pub fn ty(expected: &str, got: &Value) -> Error {
        Error::msg(format!("expected {expected}, got {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}
