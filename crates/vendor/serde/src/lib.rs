//! Offline stand-in for the `serde` crate.
//!
//! The container this repository builds in has no crates.io access, so the
//! real serde cannot be fetched. This stub provides the subset the DMI
//! workspace uses: `Serialize` / `Deserialize` traits expressed over a JSON
//! [`Value`] model, derive macros (re-exported from `serde_derive`), and the
//! `#[serde(default)]` / `#[serde(skip)]` field attributes. The companion
//! `serde_json` stub supplies text parsing and printing on top of [`Value`].
//!
//! The wire format follows serde's JSON conventions: structs are objects,
//! newtype structs are their inner value, unit enum variants are strings,
//! and data-carrying variants are externally tagged single-key objects.

pub mod error;
pub mod value;

pub use error::Error;
pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Serialization into the [`Value`] model.
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::ty("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::ty("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::ty("char", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::ty("single-char string", v)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::ty(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::ty(stringify!($t), v))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::ty(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::ty(stringify!($t), v))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::ty("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| Error::ty("f32", v))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::ty("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::ty("tuple array", v))?;
                let mut it = arr.iter();
                Ok(($({
                    let _ = $n;
                    $t::from_value(it.next().ok_or_else(|| Error::ty("tuple element", v))?)?
                },)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Map keys serializable as JSON object keys.
pub trait SerKey: Sized + Ord {
    /// Converts to an object key.
    fn to_key(&self) -> String;
    /// Parses from an object key.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl SerKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_num_key {
    ($($t:ty),*) => {$(
        impl SerKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::msg(format!("invalid numeric key `{s}`")))
            }
        }
    )*};
}

impl_num_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: SerKey, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k.to_key(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: SerKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::ty("object", v))?;
        let mut out = Self::default();
        for (k, val) in obj.iter() {
            out.insert(K::from_key(k)?, V::from_value(val)?);
        }
        Ok(out)
    }
}

impl<K: SerKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self.iter() {
            m.insert(k.to_key(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<K: SerKey, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::ty("object", v))?;
        let mut out = Self::new();
        for (k, val) in obj.iter() {
            out.insert(K::from_key(k)?, V::from_value(val)?);
        }
        Ok(out)
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::ty("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T, S> Serialize for std::collections::HashSet<T, S>
where
    T: Serialize + Ord,
{
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::ty("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

/// Support code used by `serde_derive`-generated impls. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Reads a required struct field.
    pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        match v.get(name) {
            Some(field) => {
                T::from_value(field).map_err(|e| Error::msg(format!("field `{name}`: {e}")))
            }
            None => Err(Error::msg(format!("missing field `{name}`"))),
        }
    }

    /// Reads a struct field marked `#[serde(default)]`.
    pub fn de_field_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, Error> {
        match v.get(name) {
            Some(field) => {
                T::from_value(field).map_err(|e| Error::msg(format!("field `{name}`: {e}")))
            }
            None => Ok(T::default()),
        }
    }

    /// Reads one element of a tuple-variant payload array.
    pub fn de_elem<T: Deserialize>(v: &Value, i: usize) -> Result<T, Error> {
        let arr = v.as_array().ok_or_else(|| Error::ty("tuple payload array", v))?;
        match arr.get(i) {
            Some(elem) => T::from_value(elem),
            None => Err(Error::msg(format!("missing tuple element {i}"))),
        }
    }
}
