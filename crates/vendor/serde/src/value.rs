//! The JSON value model shared by the `serde` and `serde_json` stubs.

/// A JSON number: integer-preserving like `serde_json::Number`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// Creates a number from a `u64`.
    pub fn from_u64(n: u64) -> Number {
        Number::PosInt(n)
    }

    /// Creates a number from an `i64`.
    pub fn from_i64(n: i64) -> Number {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    /// Creates a number from an `f64`.
    pub fn from_f64(f: f64) -> Number {
        Number::Float(f)
    }

    /// The value as a `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) => None,
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= 0.0 && f <= u64::MAX as f64 {
                    Some(f as u64)
                } else {
                    None
                }
            }
        }
    }

    /// The value as an `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(n) => Some(n as f64),
            Number::NegInt(n) => Some(n as f64),
            Number::Float(f) => Some(f),
        }
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x == x.trunc() && x.is_finite() && x.abs() < 1e15 {
                    // Keep float identity through text round-trips.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map, mirroring
/// `serde_json::Map<String, Value>` with `preserve_order` semantics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Inserts a key/value pair, replacing any previous value for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// A short name for the value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The number as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}
