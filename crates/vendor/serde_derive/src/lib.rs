//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! stub.
//!
//! Implemented directly over `proc_macro::TokenStream` (the sandbox has no
//! `syn`/`quote`). Supports the shapes this workspace uses:
//!
//! - structs with named fields, honoring `#[serde(default)]` and
//!   `#[serde(skip)]`,
//! - tuple structs (newtype structs serialize as their inner value),
//! - enums with unit, tuple, and struct variants (externally tagged, like
//!   serde's JSON default),
//! - lifetime-generic items (`struct Saved<'a> { .. }`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone, Default)]
struct FieldAttrs {
    default: bool,
    skip: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum ItemShape {
    Struct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    generics: String,
    shape: ItemShape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    i += 1;

    // Generics (lifetimes only in this workspace).
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1usize;
            let mut parts = TokenStream::new();
            while depth > 0 {
                match tokens.get(i) {
                    Some(TokenTree::Punct(q)) if q.as_char() == '<' => {
                        depth += 1;
                        parts.extend([tokens[i].clone()]);
                    }
                    Some(TokenTree::Punct(q)) if q.as_char() == '>' => {
                        depth -= 1;
                        if depth > 0 {
                            parts.extend([tokens[i].clone()]);
                        }
                    }
                    Some(t) => parts.extend([t.clone()]),
                    None => panic!("unbalanced generics on `{name}`"),
                }
                i += 1;
            }
            generics = parts.to_string();
        }
    }

    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemShape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemShape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => ItemShape::UnitStruct,
        }
    } else if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemShape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, got {other:?}"),
        }
    } else {
        panic!("cannot derive for `{kind}` items");
    };

    Item { name, generics, shape }
}

/// Parses a `#[...]` attribute group already known to follow a `#`,
/// updating serde field attrs when it is a `serde(...)` attribute.
fn apply_attr(group: &proc_macro::Group, attrs: &mut FieldAttrs) {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    let is_serde = matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return;
    }
    let Some(TokenTree::Group(args)) = inner.get(1) else {
        return;
    };
    for tok in args.stream() {
        if let TokenTree::Ident(id) = tok {
            match id.to_string().as_str() {
                "default" => attrs.default = true,
                "skip" | "skip_serializing" | "skip_deserializing" => attrs.skip = true,
                other => panic!("unsupported serde attribute `{other}` (stub serde)"),
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = FieldAttrs::default();
        // Attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                apply_attr(g, &mut attrs);
            }
            i += 2;
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        // `:` then the type, up to a top-level comma.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {}", item.name)
    } else {
        format!("impl<{g}> ::serde::{trait_name} for {}<{g}>", item.name, g = item.generics)
    }
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.shape {
        ItemShape::Struct(fields) => {
            let mut s = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                s.push_str(&format!(
                    "__m.insert(\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            s.push_str("::serde::Value::Object(__m)");
            s
        }
        ItemShape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemShape::TupleStruct(n) => {
            let elems: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        ItemShape::UnitStruct => "::serde::Value::Null".to_string(),
        ItemShape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let ty = &item.name;
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!(
                            "{ty}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{ty}::{vn}({bl}) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(\"{vn}\".to_string(), {payload});\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            bl = binds.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from("let mut __p = ::serde::Map::new();\n");
                        for f in fields {
                            if f.attrs.skip {
                                continue;
                            }
                            inner.push_str(&format!(
                                "__p.insert(\"{n}\".to_string(), ::serde::Serialize::to_value({n}));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{ty}::{vn} {{ {bl} }} => {{\n{inner}\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(\"{vn}\".to_string(), ::serde::Value::Object(__p));\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            bl = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n{header} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
        header = impl_header(item, "Serialize")
    )
}

fn gen_named_ctor(path: &str, fields: &[Field], src: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let init = if f.attrs.skip {
            "::core::default::Default::default()".to_string()
        } else if f.attrs.default {
            format!("::serde::__private::de_field_default({src}, \"{}\")?", f.name)
        } else {
            format!("::serde::__private::de_field({src}, \"{}\")?", f.name)
        };
        inits.push_str(&format!("{n}: {init},\n", n = f.name));
    }
    format!("{path} {{\n{inits}}}")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        ItemShape::Struct(fields) => {
            format!("::core::result::Result::Ok({})", gen_named_ctor(name, fields, "__v"))
        }
        ItemShape::TupleStruct(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        ItemShape::TupleStruct(n) => {
            let elems: Vec<String> =
                (0..*n).map(|k| format!("::serde::__private::de_elem(__v, {k})?")).collect();
            format!("::core::result::Result::Ok({name}({}))", elems.join(", "))
        }
        ItemShape::UnitStruct => format!("::core::result::Result::Ok({name})"),
        ItemShape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => return ::core::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let ctor = if *n == 1 {
                            format!("{name}::{vn}(::serde::Deserialize::from_value(__inner)?)")
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::__private::de_elem(__inner, {k})?"))
                                .collect();
                            format!("{name}::{vn}({})", elems.join(", "))
                        };
                        data_arms.push_str(&format!(
                            "if let ::core::option::Option::Some(__inner) = __obj.get(\"{vn}\") {{\n\
                             return ::core::result::Result::Ok({ctor});\n}}\n"
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let ctor = gen_named_ctor(&format!("{name}::{vn}"), fields, "__inner");
                        data_arms.push_str(&format!(
                            "if let ::core::option::Option::Some(__inner) = __obj.get(\"{vn}\") {{\n\
                             return ::core::result::Result::Ok({ctor});\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "if let ::core::option::Option::Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                 if let ::core::option::Option::Some(__obj) = __v.as_object() {{\n{data_arms}}}\n\
                 ::core::result::Result::Err(::serde::Error::msg(format!(\
                 \"no variant of {name} matches {{}}\", __v.kind())))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n{header} {{\n\
         fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n",
        header = impl_header(item, "Deserialize")
    )
}
