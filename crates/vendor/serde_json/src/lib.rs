//! Offline stand-in for the `serde_json` crate.
//!
//! Text parsing and printing over the [`serde`] stub's [`Value`] model, plus
//! the small `json!` macro surface this workspace uses. The printer emits
//! compact JSON with object keys in insertion order; the parser is a strict
//! recursive-descent JSON parser (trailing garbage and malformed input are
//! rejected, which the `visit` interface tests rely on).

pub use serde::{Error, Map, Number, Value};

/// Serializes a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Converts any serializable value to a [`Value`] (used by `json!`).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from a JSON-ish literal.
///
/// Supports the shapes used in this workspace: object literals with string
/// keys and expression values, array literals, `null`, and bare expressions
/// (serialized via [`serde::Serialize`]).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($k:literal : $v:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $( __m.insert($k.to_string(), $crate::json!($v)); )*
        $crate::Value::Object(__m)
    }};
    ([ $($v:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($v) ),* ])
    };
    ($e:expr) => { $crate::to_value(&$e) };
}

// ---------------------------------------------------------------- printing

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::msg(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => {
                Err(Error::msg(format!("unexpected `{}` at offset {}", b as char, self.pos)))
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::msg(format!("expected `,` or `}}` at offset {}", self.pos)))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("bad low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| Error::msg("bad surrogate"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error::msg("bad codepoint"))?
                            };
                            out.push(c);
                            // `hex4` leaves pos after the digits; compensate
                            // for the unconditional advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(Error::msg("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(Error::msg("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::msg("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::msg(format!("invalid number at offset {start}")));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() {
                    if let Ok(n) = text.parse::<i64>() {
                        return Ok(Value::Number(Number::from_i64(n)));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for s in ["null", "true", "false", "0", "-7", "3.5", "\"hi\\n\""] {
            let v = parse_value(s).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out);
            assert_eq!(parse_value(&out).unwrap(), v);
        }
    }

    #[test]
    fn rejects_malformed() {
        for s in ["[{]", "not json", "{\"a\":}", "[1,]", "\"open", "1 2", ""] {
            assert!(parse_value(s).is_err(), "{s} should be rejected");
        }
    }

    #[test]
    fn object_order_preserved() {
        let v = parse_value(r#"{"b":1,"a":2}"#).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out);
        assert_eq!(out, r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value(r#""A😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "A😀");
    }
}
