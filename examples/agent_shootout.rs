//! A small head-to-head: the 27-task suite under the GUI-only baseline
//! and GUI+DMI with the GPT-5 (Medium) profile on the small apps.
//!
//! ```text
//! cargo run -p dmi-examples --bin agent_shootout --release
//! ```

use dmi_agent::{aggregate, run_task, InterfaceMode, RunConfig};
use dmi_core::{Dmi, DmiBuildConfig};
use dmi_gui::Session;
use dmi_llm::CapabilityProfile;
use std::collections::HashMap;
use std::sync::Arc;

fn main() {
    // Offline phase per app.
    let mut models: HashMap<&str, Arc<Dmi>> = HashMap::new();
    for kind in dmi_apps::AppKind::ALL {
        let mut s = Session::new(kind.launch_small());
        let (dmi, _) = Dmi::build(&mut s, &DmiBuildConfig::office(kind.name()));
        models.insert(kind.name(), Arc::new(dmi));
    }

    let profile = CapabilityProfile::gpt5_medium();
    for mode in [InterfaceMode::GuiOnly, InterfaceMode::GuiPlusDmi] {
        let mut traces = Vec::new();
        for task in dmi_tasks::all_tasks() {
            for seed in [1u64, 2, 3] {
                let cfg = RunConfig::test(profile.clone(), mode, seed);
                traces.push(run_task(&task, models.get(task.app.name()), &cfg));
            }
        }
        let agg = aggregate(&traces);
        println!(
            "{:<10}  SR {:5.1}%   steps {:.2}   sim-time {:>5.0}s   one-shot {:4.1}%   policy-failures {:4.1}%",
            mode.label(),
            agg.sr * 100.0,
            agg.avg_steps,
            agg.avg_secs,
            agg.one_shot_frac * 100.0,
            agg.policy_failure_frac() * 100.0,
        );
    }
}
