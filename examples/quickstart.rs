//! Quickstart: model an application offline, then drive it declaratively.
//!
//! ```text
//! cargo run -p dmi-examples --bin quickstart
//! ```

use dmi_core::{Dmi, DmiBuildConfig};
use dmi_gui::Session;

fn main() {
    // 1. Launch the simulated Word and run DMI's offline phase:
    //    GUI ripping -> UI Navigation Graph -> decycle -> forest ->
    //    context-efficient descriptions.
    let mut session = Session::new(dmi_apps::AppKind::Word.launch_small());
    let (dmi, stats) = Dmi::build(&mut session, &DmiBuildConfig::office("Word"));
    println!("offline phase:");
    println!("  UNG nodes            : {}", stats.rip_nodes);
    println!("  back edges removed   : {}", stats.decycle.back_edges_removed);
    println!("  merge nodes          : {}", stats.forest.merge_nodes);
    println!("  shared subtrees      : {}", stats.forest.externalized);
    println!("  forest nodes         : {}", stats.forest.forest_nodes);
    println!("  core topology tokens : {}", stats.core_tokens);

    // 2. The LLM-facing artifact: the compact core topology. (First 400
    //    characters shown.)
    let head: String = dmi.core_text().chars().take(400).collect();
    println!("\ncore topology (head):\n{head}…\n");

    // 3. A declarative access: set the page margins to Narrow with one
    //    visit call — no menu navigation emitted by the caller.
    let narrow = dmi
        .forest
        .nodes
        .iter()
        .find(|n| n.name == "Narrow" && dmi.forest.is_functional_leaf(n.id))
        .expect("Narrow is modeled");
    let json = format!(r#"[{{"id": {}}}]"#, narrow.id);
    println!("visit({json})");
    let outcome = dmi.visit_json(&mut session, &json);
    println!("executed: {:?}  error: {:?}", outcome.executed, outcome.error);

    let word = session.app().as_any().downcast_ref::<dmi_apps::WordApp>().unwrap();
    println!("margins now: {:?}", word.doc.page.margins);
    assert_eq!(word.doc.page.margins, (0.5, 0.5, 0.5, 0.5));
    println!("\nquickstart OK");
}
