//! The paper's Table 1, Task 1: "make the background blue on all slides",
//! executed both ways — six imperative GUI clicks across four LLM turns
//! versus one declarative `visit` call.
//!
//! ```text
//! cargo run -p dmi-examples --bin slides_background
//! ```

use dmi_agent::{run_task, InterfaceMode, RunConfig};
use dmi_core::{Dmi, DmiBuildConfig};
use dmi_gui::Session;
use dmi_llm::CapabilityProfile;

fn perfect() -> CapabilityProfile {
    let mut p = CapabilityProfile::gpt5_medium();
    p.policy_err = 0.0;
    p.dmi_mech_err = 0.0;
    p.grounding_err = 0.0;
    p.composite_err = 0.0;
    p.instruction_noise = 0.0;
    p
}

fn main() {
    let task = dmi_tasks::task_by_id("ppt-background-all").expect("task exists");
    println!("task: {}", task.description);
    println!("GUI plan: {} imperative actions", task.plan.gui.len());
    println!("DMI plan: {} declarative turn(s)\n", task.plan.dmi.len());

    // Offline phase once; shared by reference across both runs.
    let mut s = Session::new(dmi_apps::AppKind::PowerPoint.launch_small());
    let (dmi, _) = Dmi::build(&mut s, &DmiBuildConfig::office("PowerPoint"));
    let dmi = std::sync::Arc::new(dmi);

    for mode in [InterfaceMode::GuiOnly, InterfaceMode::GuiPlusDmi] {
        let cfg = RunConfig::test(perfect(), mode, 0);
        let trace = run_task(&task, Some(&dmi), &cfg);
        println!(
            "{:<10}  success={}  LLM calls={} (incl. 3 framework)  prompt tokens={}",
            mode.label(),
            trace.success,
            trace.llm_calls,
            trace.prompt_tokens,
        );
    }
    println!("\nThe declarative run completes the core intent in a single LLM call —");
    println!("the paper's visit([\"Blue\", \"Apply to All\"]) example.");
}
