//! Observation declarations on the spreadsheet: passive `get_texts` before
//! each LLM call (coalesced DataItems), active mode for full content, and
//! a conditional-formatting rule applied declaratively.
//!
//! ```text
//! cargo run -p dmi-examples --bin spreadsheet_audit
//! ```

use dmi_core::interface::observe::{get_texts_active, get_texts_passive, PassiveConfig};
use dmi_core::{label_screen, Dmi, DmiBuildConfig};
use dmi_gui::Session;

fn main() {
    let mut s = Session::new(dmi_apps::AppKind::Excel.launch_small());

    // Passive perception: every DataItem read through Value/TextPattern,
    // empties coalesced — this text rides along in each prompt.
    let snap = s.snapshot();
    let passive = get_texts_passive(&snap, &PassiveConfig::default());
    println!(
        "passive get_texts ({} items, {} empty coalesced):",
        passive.items.len(),
        passive.empty_coalesced
    );
    println!("{}", passive.to_prompt_text());

    // Active mode: full content of specific cells by on-screen label.
    let screen = label_screen(&snap);
    let labels: Vec<String> = ["D2", "D3", "D4"]
        .iter()
        .filter_map(|n| screen.find_by_name(n).map(|e| e.label.clone()))
        .collect();
    let refs: Vec<&str> = labels.iter().map(|l| l.as_str()).collect();
    let items = get_texts_active(&s, &screen, &refs).expect("cells readable");
    println!("active get_texts:");
    for it in &items {
        println!("  {} = {}", it.name, it.text);
    }

    // Declarative action on what we observed: highlight small Units values.
    let (dmi, _) = Dmi::build(&mut s, &DmiBuildConfig::office("Excel"));
    let nb = dmi
        .forest
        .nodes
        .iter()
        .find(|n| n.name == "Name Box" && dmi.forest.is_functional_leaf(n.id))
        .unwrap()
        .id;
    let threshold_edit = dmi
        .forest
        .nodes
        .iter()
        .find(|n| {
            n.name == "Format cells that are"
                && dmi.forest.path_to(n.id).iter().any(|&a| dmi.forest.nodes[a].name == "Less Than")
        })
        .unwrap()
        .id;
    let apply = dmi
        .forest
        .nodes
        .iter()
        .find(|n| {
            n.name == "Apply Rule"
                && dmi.forest.path_to(n.id).iter().any(|&a| dmi.forest.nodes[a].name == "Less Than")
        })
        .unwrap()
        .id;
    let json = format!(
        r#"[{{"id": {nb}, "text": "C1:C10"}}, {{"shortcut_key": "Enter"}},
           {{"id": {threshold_edit}, "text": "10"}}, {{"shortcut_key": "Enter"}},
           {{"id": {apply}}}]"#
    );
    let out = dmi.visit_json(&mut s, &json);
    println!("\nvisit outcome: executed={} error={:?}", out.executed.len(), out.error);
    let excel = s.app().as_any().downcast_ref::<dmi_apps::ExcelApp>().unwrap();
    println!("conditional rules applied: {}", excel.sheet.cond_rules.len());
    assert_eq!(excel.sheet.cond_rules.len(), 1);
    println!("spreadsheet audit OK");
}
