//! Traced fleet rip walkthrough: rip the three Office small apps on a
//! shared 2-worker pool with the `dmi-obs` recorder enabled, export the
//! span timeline as Chrome trace-event JSON (load it in Perfetto or
//! `chrome://tracing`), and print the text summary plus the metrics
//! registry — after proving tracing never changed a merged byte.
//!
//! ```text
//! cargo run --example trace_rip --release [out.json] [spec_walk]
//! ```
//!
//! The optional second argument caps the speculative subtree walk
//! (default 4); pass 0 to trace the dispatch-only scheduler and compare
//! the `stall.reveal` totals against a speculating run.

use dmi_apps::AppKind;
use dmi_core::parallel::{rip_fleet, FleetEntry, ParRipConfig};
use dmi_core::ripper::RipConfig;
use dmi_gui::Session;

fn entries() -> Vec<FleetEntry> {
    AppKind::ALL
        .iter()
        .map(|k| {
            FleetEntry::new(k.name(), Session::new(k.launch_small()), RipConfig::office(k.name()))
        })
        .collect()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "target/trace_rip.json".into());
    let spec_walk = std::env::args().nth(2).map_or(4, |s| s.parse().expect("spec_walk: usize"));
    let par = ParRipConfig { workers: 2, speculation: 2, spec_walk };

    // The untraced reference: tracing is observational, so the traced
    // fleet below must merge byte-identical UNGs.
    let mut plain = entries();
    let reference: Vec<String> = rip_fleet(&mut plain, &par)
        .iter()
        .map(|o| serde_json::to_string(&o.graph).unwrap())
        .collect();

    dmi_obs::clear();
    dmi_obs::set_enabled(true);
    let mut observed = entries();
    let out = rip_fleet(&mut observed, &par);
    dmi_obs::set_enabled(false);
    let trace = dmi_obs::drain();
    let tallies = dmi_obs::tallies();
    dmi_obs::clear();

    for (o, want) in out.iter().zip(&reference) {
        assert_eq!(
            &serde_json::to_string(&o.graph).unwrap(),
            want,
            "{}: traced UNG must be byte-identical to the untraced rip",
            o.app_id
        );
        println!(
            "{:<12} nodes={:<5} edges={:<5} byte-identical to untraced rip",
            o.app_id,
            o.graph.node_count(),
            o.graph.edge_count()
        );
    }

    let stalls = trace.count(Some(dmi_obs::Cat::Scheduler), "stall");
    let explores = trace.count(Some(dmi_obs::Cat::Worker), "explore");
    assert!(stalls > 0 && explores > 0, "stall and explore spans both recorded");
    println!(
        "\n{} events ({} stall spans, {} explore spans)",
        trace.events.len(),
        stalls,
        explores
    );

    let json = trace.to_chrome_json();
    std::fs::write(&out_path, &json).expect("write chrome trace");
    println!("chrome trace written to {out_path} ({} bytes)\n", json.len());

    let mut reg = dmi_obs::Registry::from_trace(&trace);
    for (name, v) in &tallies {
        reg.inc(name, *v);
    }
    print!("{}", reg.summary_table());
    println!("{}", trace.text_summary());
}
