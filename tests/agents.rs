//! Agent-behavior integration: error injection, failure causes, step
//! caps, one-shot completion, and mode asymmetries.

use dmi_agent::{aggregate, run_task, FailureLevel, InterfaceMode, RunConfig, RunTrace};
use dmi_integration_tests::{dmi_models, perfect_profile};
use dmi_llm::CapabilityProfile;

fn run_suite(profile: CapabilityProfile, mode: InterfaceMode, seeds: &[u64]) -> Vec<RunTrace> {
    let models = dmi_models();
    let mut out = Vec::new();
    for t in dmi_tasks::all_tasks() {
        for &seed in seeds {
            let cfg = RunConfig::test(profile.clone(), mode, seed);
            out.push(run_task(&t, models.get(t.app.name()), &cfg));
        }
    }
    out
}

#[test]
fn forced_policy_error_fails_with_policy_cause() {
    let mut p = perfect_profile();
    p.policy_err = 1.0;
    let traces = run_suite(p, InterfaceMode::GuiPlusDmi, &[0]);
    let agg = aggregate(&traces);
    assert_eq!(agg.sr, 0.0, "all plans corrupted");
    assert!(agg.policy_failure_frac() > 0.9, "causes should be policy-level");
}

#[test]
fn forced_grounding_errors_fail_mechanically_in_gui_only() {
    let mut p = perfect_profile();
    p.grounding_err = 0.9;
    p.recover_prob = 0.0;
    let traces = run_suite(p.clone(), InterfaceMode::GuiOnly, &[0]);
    let agg = aggregate(&traces);
    assert!(agg.sr < 0.1, "grounding failures should sink the baseline (sr={})", agg.sr);
    for cause in agg.failures.keys() {
        assert_eq!(cause.level(), FailureLevel::Mechanism, "{cause:?}");
    }
    // The same errors cannot hurt DMI: grounding is not sampled there.
    let traces = run_suite(p, InterfaceMode::GuiPlusDmi, &[0]);
    let agg = aggregate(&traces);
    assert!(agg.sr > 0.9, "DMI is immune to visual grounding (sr={})", agg.sr);
}

#[test]
fn recovery_costs_extra_steps_but_succeeds() {
    let mut flaky = perfect_profile();
    flaky.grounding_err = 0.25;
    flaky.recover_prob = 1.0;
    let clean = run_suite(perfect_profile(), InterfaceMode::GuiOnly, &[0]);
    let noisy = run_suite(flaky, InterfaceMode::GuiOnly, &[0]);
    let a_clean = aggregate(&clean);
    let a_noisy = aggregate(&noisy);
    // Recovery re-plans, but a wrong click may already have mutated the
    // document (cascading damage, §2.1): success is partial, not full.
    assert!(a_noisy.sr >= 0.4, "recovery keeps a good share alive (sr={})", a_noisy.sr);
    assert!(
        a_noisy.avg_steps > a_clean.avg_steps,
        "recovered errors cost round trips: {} vs {}",
        a_noisy.avg_steps,
        a_clean.avg_steps
    );
}

#[test]
fn instruction_noise_is_tolerated_by_dmi() {
    let mut p = perfect_profile();
    p.instruction_noise = 1.0;
    let traces = run_suite(p, InterfaceMode::GuiPlusDmi, &[0]);
    let agg = aggregate(&traces);
    assert!(agg.sr > 0.9, "filtering + structured errors absorb noise (sr={})", agg.sr);
}

#[test]
fn step_cap_is_respected() {
    let mut p = perfect_profile();
    p.grounding_err = 1.0;
    p.recover_prob = 1.0; // Recover forever: must hit the cap.
    let models = dmi_models();
    let t = dmi_tasks::task_by_id("word-bold-range").unwrap();
    let cfg = RunConfig::test(p, InterfaceMode::GuiOnly, 0);
    let trace = run_task(&t, models.get(t.app.name()), &cfg);
    assert!(!trace.success);
    assert!(trace.llm_calls <= 30, "cap violated: {}", trace.llm_calls);
}

#[test]
fn dmi_prompts_cost_more_tokens_per_call_but_fewer_calls() {
    let gui = run_suite(perfect_profile(), InterfaceMode::GuiOnly, &[0]);
    let dmi = run_suite(perfect_profile(), InterfaceMode::GuiPlusDmi, &[0]);
    let per_call_gui: f64 =
        gui.iter().map(|t| t.prompt_tokens as f64 / t.llm_calls as f64).sum::<f64>()
            / gui.len() as f64;
    let per_call_dmi: f64 =
        dmi.iter().map(|t| t.prompt_tokens as f64 / t.llm_calls as f64).sum::<f64>()
            / dmi.len() as f64;
    assert!(per_call_dmi > per_call_gui, "forest raises per-call context");
    let calls_gui: usize = gui.iter().map(|t| t.llm_calls).sum();
    let calls_dmi: usize = dmi.iter().map(|t| t.llm_calls).sum();
    assert!(calls_dmi < calls_gui, "declarative planning cuts round trips");
}

#[test]
fn seeds_are_reproducible() {
    let p = CapabilityProfile::gpt5_medium();
    let a = run_suite(p.clone(), InterfaceMode::GuiOnly, &[7]);
    let b = run_suite(p, InterfaceMode::GuiOnly, &[7]);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.success, y.success);
        assert_eq!(x.llm_calls, y.llm_calls);
        assert_eq!(x.failure, y.failure);
    }
}

#[test]
fn ablation_differs_from_baseline_only_in_prompt_and_policy() {
    let p = CapabilityProfile::gpt5_mini_medium();
    let base = run_suite(p.clone(), InterfaceMode::GuiOnly, &[0, 1]);
    let abl = run_suite(p, InterfaceMode::GuiPlusForest, &[0, 1]);
    let a_base = aggregate(&base);
    let a_abl = aggregate(&abl);
    // Forest knowledge raises per-run prompt tokens.
    assert!(a_abl.avg_tokens > a_base.avg_tokens);
    // And does not *hurt* the small model's success rate.
    assert!(a_abl.sr >= a_base.sr - 0.1, "{} vs {}", a_abl.sr, a_base.sr);
}
