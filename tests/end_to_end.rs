//! End-to-end oracle validation: with a perfect capability profile (no
//! error injection), every benchmark task must succeed under every
//! interface condition. This pins down that task plans, the apps, the
//! DMI executor, and the agents all agree.

use dmi_agent::{run_task, InterfaceMode, RunConfig};
use dmi_integration_tests::{dmi_models, perfect_profile};

fn run_all(mode: InterfaceMode) -> Vec<(String, bool, usize)> {
    let models = dmi_models();
    dmi_tasks::all_tasks()
        .iter()
        .map(|t| {
            let cfg = RunConfig::test(perfect_profile(), mode, 0);
            let dmi = models.get(t.app.name());
            let trace = run_task(t, dmi, &cfg);
            (t.id.clone(), trace.success, trace.llm_calls)
        })
        .collect()
}

#[test]
fn all_tasks_succeed_with_perfect_profile_gui_only() {
    let results = run_all(InterfaceMode::GuiOnly);
    let failed: Vec<&(String, bool, usize)> = results.iter().filter(|(_, ok, _)| !ok).collect();
    assert!(failed.is_empty(), "GUI-only oracle failures: {failed:?}");
}

#[test]
fn all_tasks_succeed_with_perfect_profile_ablation() {
    let results = run_all(InterfaceMode::GuiPlusForest);
    let failed: Vec<&(String, bool, usize)> = results.iter().filter(|(_, ok, _)| !ok).collect();
    assert!(failed.is_empty(), "ablation oracle failures: {failed:?}");
}

#[test]
fn all_tasks_succeed_with_perfect_profile_dmi() {
    let results = run_all(InterfaceMode::GuiPlusDmi);
    let failed: Vec<&(String, bool, usize)> = results.iter().filter(|(_, ok, _)| !ok).collect();
    assert!(failed.is_empty(), "GUI+DMI oracle failures: {failed:?}");
}

#[test]
fn dmi_uses_fewer_calls_than_gui() {
    let gui = run_all(InterfaceMode::GuiOnly);
    let dmi = run_all(InterfaceMode::GuiPlusDmi);
    let gui_total: usize = gui.iter().map(|(_, _, c)| c).sum();
    let dmi_total: usize = dmi.iter().map(|(_, _, c)| c).sum();
    assert!(dmi_total < gui_total, "DMI should need fewer LLM calls: {dmi_total} vs {gui_total}");
}

#[test]
fn dmi_one_shot_majority() {
    // >61% of successful DMI runs should complete in 4 calls (§5.3).
    let dmi = run_all(InterfaceMode::GuiPlusDmi);
    let successes: Vec<_> = dmi.iter().filter(|(_, ok, _)| *ok).collect();
    let one_shot = successes.iter().filter(|(_, _, c)| *c <= 4).count();
    let frac = one_shot as f64 / successes.len() as f64;
    assert!(frac > 0.61, "one-shot fraction {frac:.2} (n={})", successes.len());
}
