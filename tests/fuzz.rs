//! Adversarial determinism fuzzing (tier-1 smoke + release-gated long
//! runs).
//!
//! Each fault class in [`FaultPlan`] gets a seeded test proving two
//! things: the designated differential oracle *flags* the fault, and
//! delta-debugging the generating op sequence converges on a minimal
//! reproducer (≤ 12 actions). A fleet-level test injects a panicking
//! and a diverging app next to healthy ones and checks per-entry fault
//! containment. Clean (fault-free) specs must pass every oracle — the
//! determinism contract itself (`docs/determinism.md`) — checked over a
//! seeded corpus: a small smoke here, hundreds of seeds in the
//! release-gated `#[ignore]` runs.

use dmi_core::fuzz::{
    check_cached_capture, check_esc_recovery, check_parallel, check_spec, shrink_ops,
    silence_injected_panics, AdversarialApp, AppSpec, ArenaOp, FaultPlan,
};
use dmi_core::ripper::rip;
use dmi_core::{
    rip_fleet, rip_parallel, FleetEntry, ParRipConfig, RipConfig, RipError, RipStatus, Ung,
};
use dmi_gui::Session;
use proptest::prelude::*;

/// Canonical UNG bytes — the representation every oracle pins.
fn bytes(g: &Ung) -> String {
    serde_json::to_string(g).expect("UNGs serialize")
}

/// Sequential reference rip of a spec.
fn rip_seq(spec: &AppSpec) -> Ung {
    let mut s = Session::new(AdversarialApp::launch(spec.clone()));
    rip(&mut s, &RipConfig::default()).0
}

/// How many ops dispatch a command when clicked (buttons and list
/// items). Worker-fork fault classes whose *detection* needs a repeat
/// visit are only deterministic once three of these exist (pigeonhole
/// over two worker forks), so their shrink predicates keep that floor.
fn dispatching_ops(ops: &[ArenaOp]) -> usize {
    ops.iter().filter(|o| matches!(o, ArenaOp::Button(_) | ArenaOp::Item(_))).count()
}

/// Shrinks a flagged spec and asserts the reproducer is minimal enough
/// and still flagged.
fn assert_shrinks(
    base: &AppSpec,
    oracle: impl Fn(&AppSpec) -> bool,
    extra: impl Fn(&[ArenaOp]) -> bool,
) -> Vec<ArenaOp> {
    assert!(oracle(base), "the full spec must be flagged before shrinking");
    let faults = base.faults;
    let min =
        shrink_ops(&base.ops, |ops| extra(ops) && oracle(&AppSpec { ops: ops.to_vec(), faults }));
    assert!(
        min.len() <= 12,
        "reproducer must shrink to <= 12 actions, got {} ({min:?})",
        min.len()
    );
    assert!(
        oracle(&AppSpec { ops: min.clone(), faults }),
        "the shrunk reproducer must still be flagged: {min:?}"
    );
    min
}

/// A base spec guaranteed to exercise restarts, Esc recovery, dialogs,
/// tabs, and repeated command dispatch, prepended with seeded noise so
/// the shrinker has real work to do.
fn noisy(seed: u64, trigger: &[ArenaOp]) -> Vec<ArenaOp> {
    let mut ops = AppSpec::generate(seed, 24).ops;
    ops.extend_from_slice(trigger);
    ops
}

// ---------------------------------------------------------------------
// Per-fault-class: the oracle flags it, the reproducer shrinks.
// ---------------------------------------------------------------------

/// Forked workers relabel a control on every restart; the app honestly
/// stops attesting its pristine token, so every worker base capture is
/// rebuilt and the fleet's base-digest oracle quarantines the lane on
/// the first probed restart (every unit's first task restarts).
#[test]
fn fault_relabel_on_restart_flagged_and_shrunk() {
    let faults = FaultPlan { relabel_on_restart: Some(1), ..FaultPlan::default() };
    let base = AppSpec { ops: noisy(11, &[ArenaOp::Button(7)]), faults };
    let min = assert_shrinks(&base, |s| check_parallel(s).is_some(), |_| true);
    assert_eq!(min.len(), 1, "one explorable control suffices to catch reset drift");
}

/// Every reset leaks state while the app keeps attesting its pristine
/// token: the capture layer's restart stash serves stale bytes, caught
/// against full rebuilds.
#[test]
fn fault_lying_reset_flagged_and_shrunk() {
    let faults = FaultPlan { lying_reset: true, ..FaultPlan::default() };
    // Tabs poison Esc recovery for the following non-tab candidate, so
    // the rip restarts repeatedly — each restart leaks.
    let trigger =
        [ArenaOp::Button(0), ArenaOp::Tab(1), ArenaOp::Pop, ArenaOp::Tab(2), ArenaOp::Pop];
    let base = AppSpec { ops: noisy(22, &trigger), faults };
    assert_shrinks(&base, |s| check_cached_capture(s).is_some(), |_| true);
}

/// A widget is relabeled without bumping the epoch stamps the MRU cache
/// trusts; cached rips keep serving the old bytes.
#[test]
fn fault_unstamped_relabel_flagged_and_shrunk() {
    let faults = FaultPlan { unstamped_relabel_after: Some(2), ..FaultPlan::default() };
    // A flat button arena: the relabel lands during the second button
    // click with the main window visible, so the rebuild rip must see
    // it while cached stamps claim nothing changed. Flat specs are
    // explore-order-insensitive, keeping the trigger deterministic.
    let base = AppSpec { ops: (0..16).map(ArenaOp::Button).collect(), faults };
    assert_shrinks(&base, |s| check_cached_capture(s).is_some(), |_| true);
}

/// Cancel-closing a window mutates the main window unstamped: Esc-based
/// recovery accumulates state a full restart never sees.
#[test]
fn fault_esc_side_effect_flagged_and_shrunk() {
    let faults = FaultPlan { esc_side_effect: true, ..FaultPlan::default() };
    // A leading button keeps the mangled control off every click path,
    // so the mangle survives to the captures. Clicking the dialog's
    // cancel button runs the side effect *during* the click; the mangle
    // counter then differs between Esc recovery (accumulates) and
    // restart-replay (reset each time), and the bytes follow.
    let trigger = [ArenaOp::Button(9), ArenaOp::Dialog(0), ArenaOp::Button(1)];
    let mut ops = trigger.to_vec();
    ops.extend((10..24).map(ArenaOp::Button));
    let base = AppSpec { ops, faults };
    assert_shrinks(&base, |s| check_esc_recovery(s).is_some(), |_| true);
}

/// Forked workers panic mid-dispatch; the fleet engine contains the
/// panic as a per-entry failure, which the parallel oracle reports.
#[test]
fn fault_worker_panic_flagged_and_shrunk() {
    silence_injected_panics();
    let faults = FaultPlan { panic_on_click: Some(1), ..FaultPlan::default() };
    let base = AppSpec { ops: noisy(55, &[ArenaOp::Button(7)]), faults };
    let min = assert_shrinks(&base, |s| check_parallel(s).is_some(), |_| true);
    assert_eq!(min.len(), 1, "one dispatching control suffices to trigger the panic");
}

/// Forked workers drift after their first dispatch (and stay drifted
/// through resets); a repeat visit to the poisoned fork trips the
/// base-digest oracle. Detection needs a fork to serve twice, which is
/// only guaranteed with three dispatching ops (two worker forks), so
/// the shrink predicate keeps that floor.
#[test]
fn fault_fork_divergence_flagged_and_shrunk() {
    let faults = FaultPlan { fork_divergence_after: Some(1), ..FaultPlan::default() };
    let trigger = [ArenaOp::Button(0), ArenaOp::Button(1), ArenaOp::Button(2)];
    let base = AppSpec { ops: noisy(66, &trigger), faults };
    assert_shrinks(&base, |s| check_parallel(s).is_some(), |ops| dispatching_ops(ops) >= 3);
}

// ---------------------------------------------------------------------
// Deep speculation under injected faults: wrong speculations die.
// ---------------------------------------------------------------------

/// The parallel oracle with deep worker-side subtree walks armed
/// (`spec_walk: 8`): every fault now has to survive speculative
/// publication *and* scheduler adoption to go unflagged.
fn check_parallel_speculative(spec: &AppSpec) -> bool {
    let mut entries = vec![FleetEntry::new(
        "spec-fuzz",
        Session::new(AdversarialApp::launch(spec.clone())),
        RipConfig::default(),
    )];
    let out = rip_fleet(&mut entries, &ParRipConfig { workers: 2, speculation: 2, spec_walk: 8 });
    let o = &out[0];
    o.error().is_some() || bytes(&o.graph) != bytes(&rip_seq(spec))
}

/// Fork divergence armed on deeply speculating workers: the probe-digest
/// oracle still quarantines the lane (a drifted fork's publications die
/// with it, before any byte merges), and the reproducer still shrinks.
#[test]
fn fault_fork_divergence_flagged_and_shrunk_under_deep_speculation() {
    let faults = FaultPlan { fork_divergence_after: Some(1), ..FaultPlan::default() };
    let trigger = [ArenaOp::Button(0), ArenaOp::Button(1), ArenaOp::Button(2)];
    let base = AppSpec { ops: noisy(77, &trigger), faults };
    assert_shrinks(&base, check_parallel_speculative, |ops| dispatching_ops(ops) >= 3);
}

/// Second-dispatch panics armed on deeply speculating workers: the
/// fork's counter survives Esc-based restoration between served tasks
/// (flat arenas never force a counter-resetting restart), so the second
/// click — a follow-up task or a speculative walk step — dies mid-walk
/// and the lane fails in place. Detection needs one of the two forks to
/// serve twice, only guaranteed with three dispatching ops
/// (pigeonhole), so the shrink predicate keeps that floor.
#[test]
fn fault_worker_panic_flagged_and_shrunk_under_deep_speculation() {
    silence_injected_panics();
    let faults = FaultPlan { panic_on_click: Some(2), ..FaultPlan::default() };
    let base = AppSpec { ops: (0..16).map(ArenaOp::Button).collect(), faults };
    assert_shrinks(&base, check_parallel_speculative, |ops| dispatching_ops(ops) >= 3);
}

/// All three fault classes armed next to a healthy entry on one deeply
/// speculating 4-worker pool: the diverging lane quarantines before any
/// speculative byte merges (its graph is the sequential reference and
/// its ledger balances — every discarded publication counted), the
/// panicking lane fails with its payload, the Esc-side-effect fault
/// stays detectable by its differential oracle, and the healthy lane is
/// byte-identical with a balanced ledger.
#[test]
fn fault_armed_speculating_fleet_discards_wrong_speculations() {
    silence_injected_panics();
    let healthy = AppSpec::generate(515, 14);
    let panicky = AppSpec {
        ops: noisy(616, &[ArenaOp::Button(0)]),
        faults: FaultPlan { panic_on_click: Some(1), ..FaultPlan::default() },
    };
    let diverging = AppSpec {
        ops: noisy(717, &(0..6).map(ArenaOp::Button).collect::<Vec<_>>()),
        faults: FaultPlan { fork_divergence_after: Some(1), ..FaultPlan::default() },
    };
    let esc_effect = AppSpec {
        ops: {
            let mut ops = vec![ArenaOp::Button(9), ArenaOp::Dialog(0), ArenaOp::Button(1)];
            ops.extend((10..24).map(ArenaOp::Button));
            ops
        },
        faults: FaultPlan { esc_side_effect: true, ..FaultPlan::default() },
    };
    assert!(
        check_esc_recovery(&esc_effect).is_some(),
        "the Esc-side-effect differential oracle must keep flagging the fault"
    );

    let mut entries = vec![
        FleetEntry::new(
            "healthy",
            Session::new(AdversarialApp::launch(healthy.clone())),
            RipConfig::default(),
        ),
        FleetEntry::new(
            "panicky",
            Session::new(AdversarialApp::launch(panicky.clone())),
            RipConfig::default(),
        ),
        FleetEntry::new(
            "diverging",
            Session::new(AdversarialApp::launch(diverging.clone())),
            RipConfig::default(),
        ),
        FleetEntry::new(
            "esc-effect",
            Session::new(AdversarialApp::launch(esc_effect.clone())),
            RipConfig::default(),
        ),
    ];
    let out = rip_fleet(&mut entries, &ParRipConfig { workers: 4, speculation: 2, spec_walk: 8 });
    assert_eq!(out.len(), 4);

    assert_eq!(out[0].status, RipStatus::Parallel);
    assert_eq!(
        bytes(&out[0].graph),
        bytes(&rip_seq(&healthy)),
        "the healthy lane must stay byte-identical next to faulty speculating siblings"
    );
    assert_eq!(
        out[0].stats.spec_published,
        out[0].stats.spec_adopted + out[0].stats.spec_wasted,
        "healthy lane: every published speculation is adopted or counted as waste"
    );

    match out[1].error().expect("the worker panic must be reported") {
        RipError::WorkerPanic { app_id, payload } => {
            assert_eq!(app_id, "panicky");
            assert!(payload.contains("injected fault"), "payload preserved, got: {payload}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    assert!(matches!(out[1].status, RipStatus::Failed(_)));

    match out[2].error().expect("the fork divergence must be reported") {
        RipError::Divergence { app_id, .. } => assert_eq!(app_id, "diverging"),
        other => panic!("expected Divergence, got {other:?}"),
    }
    assert!(matches!(out[2].status, RipStatus::Degraded(_)));
    assert_eq!(
        bytes(&out[2].graph),
        bytes(&rip_seq(&diverging)),
        "quarantine must discard the drifted fork's speculations before any byte merges"
    );
    assert_eq!(
        out[2].stats.spec_published,
        out[2].stats.spec_adopted + out[2].stats.spec_wasted,
        "diverging lane: quarantined publications are counted, never merged"
    );
}

// ---------------------------------------------------------------------
// Fleet fault containment: faulty entries fail alone.
// ---------------------------------------------------------------------

/// One panicking app + one diverging app + two healthy apps on a shared
/// 4-worker pool: per-entry outcomes, healthy UNGs byte-identical to
/// their sequential rips, faulty entries failed/degraded in place, no
/// process abort, no wrong bytes anywhere.
#[test]
fn fault_injected_fleet_is_contained_per_entry() {
    silence_injected_panics();
    let healthy_a = AppSpec::generate(101, 14);
    let healthy_b = AppSpec::generate(202, 14);
    let panicky = AppSpec {
        ops: noisy(303, &[ArenaOp::Button(0)]),
        faults: FaultPlan { panic_on_click: Some(1), ..FaultPlan::default() },
    };
    // With 4 workers (4 forks per app), detection needs a poisoned fork
    // to serve a second task — guaranteed once dispatching candidates
    // outnumber the forks (pigeonhole), hence six buttons.
    let diverging = AppSpec {
        ops: noisy(404, &(0..6).map(ArenaOp::Button).collect::<Vec<_>>()),
        faults: FaultPlan { fork_divergence_after: Some(1), ..FaultPlan::default() },
    };

    let mut entries = vec![
        FleetEntry::new(
            "healthy-a",
            Session::new(AdversarialApp::launch(healthy_a.clone())),
            RipConfig::default(),
        ),
        FleetEntry::new(
            "panicky",
            Session::new(AdversarialApp::launch(panicky.clone())),
            RipConfig::default(),
        ),
        FleetEntry::new(
            "healthy-b",
            Session::new(AdversarialApp::launch(healthy_b.clone())),
            RipConfig::default(),
        ),
        FleetEntry::new(
            "diverging",
            Session::new(AdversarialApp::launch(diverging.clone())),
            RipConfig::default(),
        ),
    ];
    let out = rip_fleet(&mut entries, &ParRipConfig { workers: 4, speculation: 2, spec_walk: 4 });
    assert_eq!(out.len(), 4);

    for (spec, idx) in [(&healthy_a, 0usize), (&healthy_b, 2)] {
        assert_eq!(
            out[idx].status,
            RipStatus::Parallel,
            "healthy entry '{}' must not be dragged down by faulty siblings",
            out[idx].app_id
        );
        assert_eq!(
            bytes(&out[idx].graph),
            bytes(&rip_seq(spec)),
            "healthy entry '{}' must stay byte-identical to its sequential rip",
            out[idx].app_id
        );
    }

    match out[1].error().expect("the worker panic must be reported") {
        RipError::WorkerPanic { app_id, payload } => {
            assert_eq!(app_id, "panicky");
            assert!(payload.contains("injected fault"), "payload preserved, got: {payload}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    assert!(matches!(out[1].status, RipStatus::Failed(_)));

    match out[3].error().expect("the fork divergence must be reported") {
        RipError::Divergence { app_id, .. } => assert_eq!(app_id, "diverging"),
        other => panic!("expected Divergence, got {other:?}"),
    }
    assert!(matches!(out[3].status, RipStatus::Degraded(_)));
    assert_eq!(
        bytes(&out[3].graph),
        bytes(&rip_seq(&diverging)),
        "a degraded entry re-rips sequentially into the reference bytes"
    );
}

/// Gateway fault containment: an executor-visit task against a
/// [`FaultPlan`]-drifting adversarial app runs through the multi-tenant
/// gateway next to healthy Office tenants. The drifting tenant's fault
/// stays contained — its task dies cleanly with the panic payload
/// reported per-outcome — while every sibling tenant's [`RunTrace`]
/// stays byte-identical to its solo sequential run.
#[test]
fn fault_drifting_tenant_is_contained_in_the_gateway() {
    use dmi_agent::{
        Gateway, GatewayConfig, InterfaceMode, RunConfig, ServeApp, ServeRequest, TaskState,
    };
    use dmi_llm::{CapabilityProfile, GuiStep, TargetQuery, TaskPlan};
    use std::sync::Arc;

    silence_injected_panics();

    // Forked tenant sessions of this app panic on their first command
    // dispatch — the executor's visit click detonates it mid-task.
    let spec = AppSpec {
        ops: (0..6).map(ArenaOp::Button).collect(),
        faults: FaultPlan { panic_on_click: Some(1), ..FaultPlan::default() },
    };

    // The adversarial task clicks arena buttons GUI-style. `app` (an
    // AppKind) is a placeholder: the gateway draws sessions from the
    // named `ServeApp` donor, never from the task's own launcher.
    let adversarial_task = Arc::new(dmi_agent::AgentTask {
        id: "fuzz-drift-visit".into(),
        app: dmi_apps::AppKind::Word,
        description: "Click two arena buttons.".into(),
        setup: None,
        verify: |_| false,
        plan: TaskPlan {
            dmi: vec![dmi_llm::PlanStep::Visit(vec![dmi_llm::VisitTarget::click(
                TargetQuery::name("Button 0"),
            )])],
            gui: vec![
                GuiStep::Click(TargetQuery::name("Button 0")),
                GuiStep::Click(TargetQuery::name("Button 1")),
            ],
        },
        mutations: vec![dmi_llm::PlanMutation::DropLast],
    });

    let perfect = {
        let mut p = CapabilityProfile::gpt5_medium();
        p.policy_err = 0.0;
        p.grounding_err = 0.0;
        p.composite_err = 0.0;
        p.instruction_noise = 0.0;
        p
    };
    let office_task =
        Arc::new(dmi_tasks::task_by_id("ppt-background-all").expect("suite task exists"));
    let requests: Vec<ServeRequest> = vec![
        ServeRequest {
            tenant: "healthy-1".into(),
            app: "PowerPoint".into(),
            task: Arc::clone(&office_task),
            cfg: RunConfig::test(perfect.clone(), InterfaceMode::GuiOnly, 3),
        },
        ServeRequest {
            tenant: "drifter".into(),
            app: "adversarial".into(),
            task: Arc::clone(&adversarial_task),
            cfg: RunConfig::test(perfect.clone(), InterfaceMode::GuiOnly, 1),
        },
        ServeRequest {
            tenant: "healthy-2".into(),
            app: "PowerPoint".into(),
            task: Arc::clone(&office_task),
            cfg: RunConfig::test(perfect.clone(), InterfaceMode::GuiOnly, 7),
        },
    ];

    // Solo references for the healthy tenants (sequential, own session).
    let expected: Vec<String> = requests
        .iter()
        .filter(|r| r.app == "PowerPoint")
        .map(|r| dmi_agent::run_task(&r.task, None, &r.cfg).identity_bytes())
        .collect();
    // Solo reference for the drifting tenant, driven through the same
    // resumable machine on a fresh adversarial fork: it panics.
    let solo_drift = {
        let donor = Session::new(AdversarialApp::launch(spec.clone()));
        let fork = donor.fork_from_pristine().expect("adversarial apps fork");
        let cfg = RunConfig::test(perfect.clone(), InterfaceMode::GuiOnly, 1);
        let mut state = TaskState::with_session(&adversarial_task, fork, &cfg);
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            while state.step(&adversarial_task, None) == dmi_agent::StepStatus::Running {}
        }))
    };
    assert!(solo_drift.is_err(), "the drifting app must panic on the visit click");

    let mut gw = Gateway::new(
        vec![
            ServeApp::new(
                "PowerPoint",
                Session::new(dmi_apps::AppKind::PowerPoint.launch_small()),
                None,
            ),
            ServeApp::new("adversarial", Session::new(AdversarialApp::launch(spec)), None),
        ],
        GatewayConfig { workers: 2, sessions_per_app: 2, max_in_flight: 4 },
    );
    let report = gw.serve(requests);

    assert_eq!(report.stats.completed, 2, "both healthy tenants complete");
    assert_eq!(report.stats.faulted, 1, "exactly the drifting tenant dies");

    let drift = &report.outcomes[1];
    assert_eq!(drift.tenant, "drifter");
    assert!(drift.trace.is_none(), "a panicked task yields no trace");
    let fault = drift.fault.as_ref().expect("the panic payload is reported");
    assert!(fault.contains("injected fault"), "payload preserved, got: {fault}");

    for (o, want) in [&report.outcomes[0], &report.outcomes[2]].iter().zip(&expected) {
        let got = o.trace.as_ref().expect("healthy trace").identity_bytes();
        assert_eq!(
            &got, want,
            "healthy tenant '{}' must stay byte-identical to its solo run",
            o.tenant
        );
    }
}

// ---------------------------------------------------------------------
// Clean specs: the determinism contract holds on every axis.
// ---------------------------------------------------------------------

/// Byte-identity across sequential, parallel, and fleet engines for a
/// range of seeded random clean apps. Fleet runs batch four specs per
/// pool to exercise cross-app sharing.
fn assert_identity_for_seeds(seeds: std::ops::Range<u64>) {
    let specs: Vec<AppSpec> = seeds.map(|s| AppSpec::generate(s, 20)).collect();
    let reference: Vec<String> = specs.iter().map(|s| bytes(&rip_seq(s))).collect();
    let par = ParRipConfig { workers: 2, speculation: 2, spec_walk: 4 };
    for (spec, expect) in specs.iter().zip(&reference) {
        let mut s = Session::new(AdversarialApp::launch(spec.clone()));
        let (g, _) = rip_parallel(&mut s, &RipConfig::default(), &par);
        assert_eq!(&bytes(&g), expect, "parallel rip diverged for spec {spec:?}");
    }
    for (chunk, expectations) in specs.chunks(4).zip(reference.chunks(4)) {
        let mut entries: Vec<FleetEntry> = chunk
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                FleetEntry::new(
                    format!("app-{i}"),
                    Session::new(AdversarialApp::launch(spec.clone())),
                    RipConfig::default(),
                )
            })
            .collect();
        let out = rip_fleet(&mut entries, &par);
        for ((o, expect), spec) in out.iter().zip(expectations).zip(chunk) {
            assert_eq!(o.error(), None, "no oracle may fire on a clean spec {spec:?}");
            assert_eq!(&bytes(&o.graph), expect, "fleet rip diverged for spec {spec:?}");
        }
    }
}

/// Tier-1 smoke: a small seeded corpus, debug-friendly.
#[test]
fn clean_specs_rip_identically_smoke() {
    assert_identity_for_seeds(0..24);
}

/// Release-gated long run (`cargo test --release -- --ignored`): the
/// acceptance corpus, ≥200 seeded random apps.
#[test]
#[ignore = "long corpus; run with --release -- --ignored"]
fn clean_specs_rip_identically_200_seeds() {
    assert_identity_for_seeds(1000..1208);
}

/// Release-gated: every oracle (capture caches and Esc recovery
/// included) stays quiet across a seeded clean corpus.
#[test]
#[ignore = "long corpus; run with --release -- --ignored"]
fn clean_specs_pass_every_oracle_100_seeds() {
    for seed in 2000..2100u64 {
        let spec = AppSpec::generate(seed, 20);
        assert_eq!(check_spec(&spec), None, "clean spec from seed {seed} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Structured generation through the shrink-friendly raw encoding:
    /// arbitrary op sequences (degenerate nesting included) must pass
    /// every oracle as long as no fault is armed.
    #[test]
    fn random_clean_specs_pass_every_oracle(raw in proptest::collection::vec((0u8..6, 0u16..5), 1..20)) {
        let spec = AppSpec::from_raw(&raw);
        prop_assert!(check_spec(&spec).is_none(), "clean spec diverged: {:?}", spec.ops);
    }
}
