//! The control-identity layer: `ControlKey` stability, indexed resolution
//! equivalence with the old linear scan, and pinned rip capture counts.

use dmi_apps::AppKind;
use dmi_core::parallel::{rip_fleet, rip_parallel, FleetEntry, ParRipConfig};
use dmi_core::ripper::{rip, RipConfig};
use dmi_gui::{CaptureConfig, Session};
use dmi_uia::{ControlId, ControlKey, Snapshot};

/// The ancestor path computed the pre-index way: walk parents, join names.
fn walked_path(snap: &Snapshot, idx: usize) -> String {
    let mut names: Vec<&str> = Vec::new();
    let mut cur = snap.node(idx).parent;
    while let Some(p) = cur {
        let name = &snap.node(p).props.name;
        names.push(if name.is_empty() { "[Unnamed]" } else { name });
        cur = snap.node(p).parent;
    }
    names.reverse();
    names.join("/")
}

/// The resolver this PR replaced: a full arena scan with per-candidate
/// path recomputation. Kept here as the equivalence oracle.
fn linear_resolve(snap: &Snapshot, cid: &ControlId) -> Option<usize> {
    (0..snap.len()).find(|&i| {
        let props = &snap.node(i).props;
        props.primary_id() == cid.primary
            && props.control_type == cid.control_type
            && walked_path(snap, i) == cid.ancestor_path
    })
}

#[test]
fn indexed_resolve_matches_linear_scan_on_all_small_apps() {
    for kind in AppKind::ALL {
        let mut s = Session::new(kind.launch_small());
        let snap = s.snapshot();
        for (i, _) in snap.iter() {
            let cid = snap.control_id(i);
            assert_eq!(
                snap.resolve(&cid),
                linear_resolve(&snap, &cid),
                "{}: node {i} ({})",
                kind.name(),
                cid
            );
        }
        // Identifiers that exist nowhere must miss in both.
        let ghost = ControlId {
            primary: "No Such Control".into(),
            control_type: dmi_uia::ControlType::Button,
            ancestor_path: "Nowhere/At All".into(),
        };
        assert_eq!(snap.resolve(&ghost), None);
        assert_eq!(linear_resolve(&snap, &ghost), None);
    }
}

#[test]
fn cached_paths_match_walked_paths_on_all_small_apps() {
    for kind in AppKind::ALL {
        let mut s = Session::new(kind.launch_small());
        let snap = s.snapshot();
        for (i, _) in snap.iter() {
            assert_eq!(snap.ancestor_path(i), walked_path(&snap, i), "{}: node {i}", kind.name());
        }
    }
}

#[test]
fn control_keys_stable_across_snapshots_of_same_ui() {
    let mut s = Session::new(AppKind::Word.launch_small());
    let a = s.snapshot();
    let b = s.snapshot();
    let key_by_runtime = |snap: &Snapshot| {
        snap.iter()
            .map(|(i, n)| (n.runtime_id, snap.control_key(i)))
            .collect::<std::collections::HashMap<_, _>>()
    };
    let ka = key_by_runtime(&a);
    let kb = key_by_runtime(&b);
    let mut common = 0;
    for (rt, k) in &ka {
        if let Some(k2) = kb.get(rt) {
            assert_eq!(k, k2, "key changed across snapshots for {rt}");
            common += 1;
        }
    }
    assert!(common > 50, "snapshots should overlap substantially (got {common})");

    // Stability across a restart of the same application build: the same
    // identifier synthesizes the same key from a fresh widget arena.
    s.restart();
    let c = s.snapshot();
    let kc = key_by_runtime(&c);
    let mut matched = 0;
    for (rt, k) in &kc {
        if let Some(k0) = ka.get(rt) {
            assert_eq!(k, k0, "key changed across restart for {rt}");
            matched += 1;
        }
    }
    assert!(matched > 50, "restart rebuilds the same UI (got {matched})");
}

#[test]
fn control_key_is_a_pure_function_of_the_identifier() {
    let mut s = Session::new(AppKind::Excel.launch_small());
    let snap = s.snapshot();
    for (i, _) in snap.iter() {
        let cid = snap.control_id(i);
        assert_eq!(snap.control_key(i), ControlKey::of_id(&cid), "node {i}");
    }
}

/// Regression pin for the Word small-app rip under the default Esc-based
/// fast state restoration: capture counts must not drift silently. The
/// UNG node/edge counts are byte-identical to the legacy full-restart
/// strategy (pinned below); the effort counters reflect the recovery
/// planner (most restarts replaced by Esc presses).
#[test]
fn word_small_rip_capture_counts_pinned() {
    let mut s = Session::new(AppKind::Word.launch_small());
    let (g, stats) = rip(&mut s, &RipConfig::office("Word"));
    assert_eq!(g.node_count(), 2411, "UNG node count");
    assert_eq!(g.edge_count(), 2435, "UNG edge count");
    assert_eq!(stats.snapshots, 8870, "snapshots captured");
    assert_eq!(stats.clicks, 6558, "candidate clicks");
    assert_eq!(stats.restarts, 10, "fallback restarts (was 2312 before Esc recovery)");
    assert_eq!(stats.esc_recoveries + stats.restarts, 2312, "restorations + fallback restarts");
    assert_eq!(stats.blocklisted, 2, "blocklisted candidates");
    assert_eq!(stats.replay_failures, 1, "replay failures");
    assert_eq!(stats.windows_seen, 15, "windows observed opening");
}

/// The legacy full-restart strategy is the equivalence oracle: with
/// [`RipConfig::esc_recovery`] off, every count must stay byte-identical
/// to the values produced before fast recovery existed.
#[test]
#[ignore = "rip-heavy: CI runs these in release via `-- --ignored`"]
fn word_small_rip_legacy_full_restart_counts_unchanged() {
    let mut s = Session::new(AppKind::Word.launch_small());
    let mut cfg = RipConfig::office("Word");
    cfg.esc_recovery = false;
    let (g, stats) = rip(&mut s, &cfg);
    assert_eq!(g.node_count(), 2411, "UNG node count");
    assert_eq!(g.edge_count(), 2435, "UNG edge count");
    assert_eq!(stats.snapshots, 8870, "snapshots captured");
    assert_eq!(stats.clicks, 6558, "candidate clicks");
    assert_eq!(stats.restarts, 2312, "state-restoration restarts");
    assert_eq!(stats.esc_recoveries, 0, "no fast recoveries on the legacy path");
    assert_eq!(stats.esc_presses, 0, "no recovery Esc presses on the legacy path");
    assert_eq!(stats.blocklisted, 2, "blocklisted candidates");
    assert_eq!(stats.replay_failures, 1, "replay failures");
    assert_eq!(stats.windows_seen, 15, "windows observed opening");
}

/// Capture-cache equivalence oracle: ripping with the default epoch-cached
/// capture pipeline must produce a UNG byte-identical (nodes, names,
/// types, edges, in order) to a session whose [`CaptureConfig`] forces an
/// eager full rebuild on every capture — for every app — with identical
/// rip statistics, while serving a substantial share of captures in O(1).
#[test]
#[ignore = "rip-heavy: CI runs these in release via `-- --ignored`"]
fn cached_capture_ung_is_byte_identical_to_full_rebuild_oracle() {
    for kind in AppKind::ALL {
        let cfg = RipConfig::office(kind.name());
        let mut s = Session::new(kind.launch_small());
        assert!(s.capture_config().cached, "epoch-cached capture is the default");
        let (g_cached, st_cached) = rip(&mut s, &cfg);

        let mut s2 = Session::new(kind.launch_small());
        s2.set_capture_config(CaptureConfig::full_rebuild());
        let (g_full, st_full) = rip(&mut s2, &cfg);

        assert_eq!(g_cached.node_count(), g_full.node_count(), "{kind}: node count");
        assert_eq!(g_cached.edge_count(), g_full.edge_count(), "{kind}: edge count");
        for id in g_cached.ids() {
            assert_eq!(g_cached.node(id), g_full.node(id), "{kind}: node {id}");
            assert_eq!(g_cached.successors(id), g_full.successors(id), "{kind}: edges of {id}");
        }
        assert_eq!(st_cached, st_full, "{kind}: every rip statistic matches the oracle");
        let stats = s.capture_stats();
        assert_eq!(stats.captures, st_cached.snapshots, "{kind}: every capture was counted");
        assert!(
            stats.full_hits * 2 > stats.captures,
            "{kind}: most captures should be O(1) hits ({} of {})",
            stats.full_hits,
            stats.captures
        );
        assert_eq!(s2.capture_stats().full_hits, 0, "{kind}: the oracle never serves a hit");
    }
}

/// Parallel-engine equivalence oracle: the sharded rip (worker sessions
/// forked from the shared pristine image, speculative exploration,
/// deterministic in-order merge) must produce a UNG **byte-identical** —
/// as serialized bytes, node ids, names, types, and ordered edge lists —
/// to the sequential ripper for every app, at 4 worker shards. The
/// commit-derived counters must also match; pure effort counters may only
/// grow (speculation explores candidates the sequential DFS skips).
#[test]
#[ignore = "rip-heavy: CI runs these in release via `-- --ignored`"]
fn parallel_rip_ung_is_byte_identical_to_sequential() {
    for kind in AppKind::ALL {
        let cfg = RipConfig::office(kind.name());
        let mut s = Session::new(kind.launch_small());
        let (g_seq, st_seq) = rip(&mut s, &cfg);

        let mut s2 = Session::new(kind.launch_small());
        let par = ParRipConfig { workers: 4, speculation: 2, spec_walk: 4 };
        let (g_par, st_par) = rip_parallel(&mut s2, &cfg, &par);

        assert_eq!(
            serde_json::to_string(&g_par).unwrap(),
            serde_json::to_string(&g_seq).unwrap(),
            "{kind}: merged UNG must serialize byte-identically"
        );
        assert_eq!(g_par.node_count(), g_seq.node_count(), "{kind}: node count");
        assert_eq!(g_par.edge_count(), g_seq.edge_count(), "{kind}: edge count");
        assert_eq!(st_par.windows_seen, st_seq.windows_seen, "{kind}: windows seen");
        assert_eq!(st_par.blocklisted, st_seq.blocklisted, "{kind}: blocklist hits");
        assert!(
            st_par.clicks >= st_seq.clicks,
            "{kind}: speculation only adds effort ({} vs {})",
            st_par.clicks,
            st_seq.clicks
        );
    }
}

/// Fleet-engine equivalence oracle: ripping all three Office apps
/// concurrently on one shared 4-worker pool — with an unforkable entry
/// mixed into the fleet to exercise the sequential-fallback path — must
/// produce, for **every** entry, a UNG byte-identical (as serialized
/// bytes) to that entry's sequential rip, with matching commit-derived
/// counters and nonzero shared-capture-pool hits across each Office
/// app's shards.
#[test]
#[ignore = "rip-heavy: CI runs these in release via `-- --ignored`"]
fn fleet_rip_ungs_are_byte_identical_to_sequential() {
    use dmi_apps::testkit::UnforkableApp;

    // Sequential references, one per entry.
    let mut seq: Vec<(String, String, u64, u64)> = Vec::new();
    for kind in AppKind::ALL {
        let cfg = RipConfig::office(kind.name());
        let mut s = Session::new(kind.launch_small());
        let (g, st) = rip(&mut s, &cfg);
        seq.push((
            kind.name().to_string(),
            serde_json::to_string(&g).unwrap(),
            st.windows_seen,
            st.blocklisted,
        ));
    }
    {
        let mut s = Session::new(Box::new(UnforkableApp::new(3)));
        let (g, st) = rip(&mut s, &RipConfig::default());
        seq.push((
            "Unforkable".to_string(),
            serde_json::to_string(&g).unwrap(),
            st.windows_seen,
            st.blocklisted,
        ));
    }

    let mut entries: Vec<FleetEntry> = AppKind::ALL
        .iter()
        .map(|k| {
            FleetEntry::new(k.name(), Session::new(k.launch_small()), RipConfig::office(k.name()))
        })
        .collect();
    entries.push(FleetEntry::new(
        "Unforkable",
        Session::new(Box::new(UnforkableApp::new(3))),
        RipConfig::default(),
    ));

    let out = rip_fleet(&mut entries, &ParRipConfig { workers: 4, speculation: 2, spec_walk: 4 });
    assert_eq!(out.len(), seq.len(), "one outcome per entry, in entry order");
    for (o, (app, g_seq, windows_seen, blocklisted)) in out.iter().zip(&seq) {
        assert_eq!(&o.app_id, app);
        assert_eq!(
            &serde_json::to_string(&o.graph).unwrap(),
            g_seq,
            "{app}: fleet UNG must serialize byte-identically to the sequential rip"
        );
        assert_eq!(o.stats.windows_seen, *windows_seen, "{app}: windows seen");
        assert_eq!(o.stats.blocklisted, *blocklisted, "{app}: blocklist hits");
        if app == "Unforkable" {
            assert!(o.fell_back(), "{app}: must ride the sequential fallback");
        } else {
            assert!(!o.fell_back(), "{app}: Office apps fork");
            assert!(
                o.stats.pool_hits > 0,
                "{app}: shards must serve shared captures from the pool"
            );
        }
    }
}

/// Subtree-speculation equivalence oracle (the release gate for the
/// scheduler-adoption engine): with deep worker-side walks enabled
/// (`spec_walk: 8`), every merged UNG must stay byte-identical to the
/// sequential rip — adoption substitutes results keyed by the complete
/// exploration input `(setup, path, candidate)`, so a key match can never
/// change a committed byte — while the engine demonstrably *uses* the
/// table (nonzero adoptions per Office app) and the accounting invariant
/// `published == adopted + wasted` holds on every healthy lane.
#[test]
#[ignore = "rip-heavy: CI runs these in release via `-- --ignored`"]
fn speculative_rip_ung_is_byte_identical_to_sequential() {
    for kind in AppKind::ALL {
        let cfg = RipConfig::office(kind.name());
        let mut s = Session::new(kind.launch_small());
        let (g_seq, st_seq) = rip(&mut s, &cfg);
        assert_eq!(st_seq.spec_published, 0, "{kind}: sequential rips never speculate");

        let mut s2 = Session::new(kind.launch_small());
        let par = ParRipConfig { workers: 4, speculation: 2, spec_walk: 8 };
        let (g_par, st_par) = rip_parallel(&mut s2, &cfg, &par);

        assert_eq!(
            serde_json::to_string(&g_par).unwrap(),
            serde_json::to_string(&g_seq).unwrap(),
            "{kind}: speculative UNG must serialize byte-identically to sequential"
        );
        assert!(
            st_par.spec_adopted > 0,
            "{kind}: deep walks must yield scheduler adoptions (published={})",
            st_par.spec_published
        );
        assert_eq!(
            st_par.spec_published,
            st_par.spec_adopted + st_par.spec_wasted,
            "{kind}: every published speculation is adopted or counted as waste"
        );
        assert_eq!(st_par.windows_seen, st_seq.windows_seen, "{kind}: windows seen");
        assert_eq!(st_par.blocklisted, st_seq.blocklisted, "{kind}: blocklist hits");
    }
}

/// Fleet-mode speculation oracle: deep walks across a mixed fleet (three
/// Office apps + an unforkable entry on the sequential fallback) keep
/// every UNG byte-identical to its sequential rip, adopt speculations on
/// every Office lane, balance the waste ledger per entry, and leave the
/// fallback entry's speculation counters at zero.
#[test]
#[ignore = "rip-heavy: CI runs these in release via `-- --ignored`"]
fn speculative_fleet_ungs_are_byte_identical_to_sequential() {
    use dmi_apps::testkit::UnforkableApp;

    let mut seq: Vec<(String, String)> = Vec::new();
    for kind in AppKind::ALL {
        let cfg = RipConfig::office(kind.name());
        let mut s = Session::new(kind.launch_small());
        let (g, _) = rip(&mut s, &cfg);
        seq.push((kind.name().to_string(), serde_json::to_string(&g).unwrap()));
    }
    {
        let mut s = Session::new(Box::new(UnforkableApp::new(3)));
        let (g, _) = rip(&mut s, &RipConfig::default());
        seq.push(("Unforkable".to_string(), serde_json::to_string(&g).unwrap()));
    }

    let mut entries: Vec<FleetEntry> = AppKind::ALL
        .iter()
        .map(|k| {
            FleetEntry::new(k.name(), Session::new(k.launch_small()), RipConfig::office(k.name()))
        })
        .collect();
    entries.push(FleetEntry::new(
        "Unforkable",
        Session::new(Box::new(UnforkableApp::new(3))),
        RipConfig::default(),
    ));

    let out = rip_fleet(&mut entries, &ParRipConfig { workers: 4, speculation: 2, spec_walk: 8 });
    assert_eq!(out.len(), seq.len());
    for (o, (app, g_seq)) in out.iter().zip(&seq) {
        assert_eq!(&o.app_id, app);
        assert_eq!(
            &serde_json::to_string(&o.graph).unwrap(),
            g_seq,
            "{app}: speculative fleet UNG must serialize byte-identically"
        );
        assert_eq!(
            o.stats.spec_published,
            o.stats.spec_adopted + o.stats.spec_wasted,
            "{app}: speculation ledger balances"
        );
        if app == "Unforkable" {
            assert!(o.fell_back(), "{app}: rides the sequential fallback");
            assert_eq!(o.stats.spec_published, 0, "{app}: the fallback never speculates");
        } else {
            assert!(
                o.stats.spec_adopted > 0,
                "{app}: fleet lanes must adopt speculations (published={})",
                o.stats.spec_published
            );
        }
    }
}

/// The serve oracle: every task served through the multi-tenant gateway
/// must yield a [`dmi_agent::RunTrace`] byte-identical to its
/// single-session sequential run, at every concurrency level — the
/// gateway may change scheduling, session provenance (pooled recycle,
/// pristine fork, donor lend), and latency accounting, but never a
/// single trace byte.
#[test]
#[ignore = "rip-heavy: CI runs these in release via `-- --ignored`"]
fn gateway_traces_are_byte_identical_to_sequential_at_all_concurrencies() {
    use dmi_agent::{
        run_task, Gateway, GatewayConfig, InterfaceMode, RunConfig, ServeApp, ServeRequest,
    };
    use dmi_integration_tests::dmi_models;
    use std::sync::Arc;

    let models = dmi_models();
    let tasks: Vec<Arc<dmi_agent::AgentTask>> =
        dmi_tasks::all_tasks().into_iter().map(Arc::new).collect();

    // The request mix cycles all 27 tasks over all three Office apps with
    // varied seeds and modes; `gpt5_medium` keeps failure injection live
    // so failed traces are oracle-checked too.
    let mix = |n: usize| -> Vec<ServeRequest> {
        (0..n)
            .map(|i| {
                let task = &tasks[i % tasks.len()];
                ServeRequest {
                    tenant: format!("tenant-{}", i % 5),
                    app: task.app.name().to_string(),
                    task: Arc::clone(task),
                    cfg: RunConfig::test(
                        dmi_llm::CapabilityProfile::gpt5_medium(),
                        if i % 3 == 0 { InterfaceMode::GuiOnly } else { InterfaceMode::GuiPlusDmi },
                        i as u64,
                    ),
                }
            })
            .collect()
    };

    for concurrency in [64usize, 4096] {
        let requests = mix(concurrency);
        let expected: Vec<String> = requests
            .iter()
            .map(|r| run_task(&r.task, models.get(r.task.app.name()), &r.cfg).identity_bytes())
            .collect();

        let apps: Vec<ServeApp> = dmi_apps::AppKind::ALL
            .iter()
            .map(|&k| {
                ServeApp::new(
                    k.name(),
                    Session::new(k.launch_small()),
                    models.get(k.name()).cloned(),
                )
            })
            .collect();
        let mut gw = Gateway::new(
            apps,
            GatewayConfig { workers: 4, sessions_per_app: 8, max_in_flight: 32 },
        );
        let report = gw.serve(requests);
        assert_eq!(report.stats.completed, concurrency, "every request produces a trace");
        assert_eq!(report.stats.faulted, 0);
        for (i, (o, want)) in report.outcomes.iter().zip(&expected).enumerate() {
            let got = o.trace.as_ref().expect("trace present").identity_bytes();
            assert_eq!(
                &got, want,
                "c={concurrency} request {i} ({} on {}): served trace must be \
                 byte-identical to the sequential run",
                o.tenant, o.app
            );
        }
        assert!(
            report.stats.session_reuses > 0,
            "c={concurrency}: pooled recycling must be exercised"
        );
    }
}

/// §4.1 equivalence: ripping with Esc-based fast state restoration must
/// produce a UNG byte-identical (nodes, names, types, edges, in order) to
/// the legacy full-restart path, for every app — while restarting far
/// less often.
#[test]
#[ignore = "rip-heavy: CI runs these in release via `-- --ignored`"]
fn esc_recovery_ung_is_byte_identical_to_full_restart_oracle() {
    for kind in AppKind::ALL {
        let fast_cfg = RipConfig::office(kind.name());
        assert!(fast_cfg.esc_recovery, "fast recovery is the default");
        let mut s = Session::new(kind.launch_small());
        let (g_fast, s_fast) = rip(&mut s, &fast_cfg);

        let mut legacy_cfg = fast_cfg.clone();
        legacy_cfg.esc_recovery = false;
        let mut s2 = Session::new(kind.launch_small());
        let (g_slow, s_slow) = rip(&mut s2, &legacy_cfg);

        assert_eq!(g_fast.node_count(), g_slow.node_count(), "{kind}: node count");
        assert_eq!(g_fast.edge_count(), g_slow.edge_count(), "{kind}: edge count");
        for id in g_fast.ids() {
            assert_eq!(g_fast.node(id), g_slow.node(id), "{kind}: node {id}");
            assert_eq!(g_fast.successors(id), g_slow.successors(id), "{kind}: edges of {id}");
        }
        assert!(
            s_fast.restarts * 2 < s_slow.restarts,
            "{kind}: recovery should replace most restarts ({} vs {})",
            s_fast.restarts,
            s_slow.restarts
        );
        assert!(s_fast.esc_recoveries > 0, "{kind}: fast recoveries happened");
        assert_eq!(s_fast.blocklisted, s_slow.blocklisted, "{kind}: blocklist hits");
        assert_eq!(s_fast.windows_seen, s_slow.windows_seen, "{kind}: windows seen");
    }
}

/// Tests that toggle the process-global tracing flag serialize here so
/// concurrent ignored runs cannot observe each other's windows.
fn obs_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The observability non-interference oracle for the rip path: a fleet
/// rip with tracing enabled must produce UNGs byte-identical to the
/// untraced fleet — recording is strictly observational, so timestamps
/// can differ but never a merged byte — while the captured trace itself
/// is substantive: stall spans attributed apart from explore spans, and
/// the stall total on its own summary line.
#[test]
#[ignore = "rip-heavy: CI runs these in release via `-- --ignored`"]
fn traced_fleet_rip_is_byte_identical_to_untraced() {
    let _g = obs_guard();
    let entries = || -> Vec<FleetEntry> {
        AppKind::ALL
            .iter()
            .map(|k| {
                FleetEntry::new(
                    k.name(),
                    Session::new(k.launch_small()),
                    RipConfig::office(k.name()),
                )
            })
            .collect()
    };
    let par = ParRipConfig { workers: 2, speculation: 2, spec_walk: 4 };

    let mut plain = entries();
    let untraced: Vec<String> = rip_fleet(&mut plain, &par)
        .iter()
        .map(|o| serde_json::to_string(&o.graph).unwrap())
        .collect();

    dmi_obs::clear();
    dmi_obs::set_enabled(true);
    let mut observed = entries();
    let out = rip_fleet(&mut observed, &par);
    dmi_obs::set_enabled(false);
    let trace = dmi_obs::drain();
    dmi_obs::clear();

    for (o, want) in out.iter().zip(&untraced) {
        assert_eq!(
            &serde_json::to_string(&o.graph).unwrap(),
            want,
            "{}: tracing must never change a merged byte",
            o.app_id
        );
    }
    assert!(!trace.is_empty(), "the traced run recorded events");
    assert!(trace.count(Some(dmi_obs::Cat::Scheduler), "stall") > 0, "stalls attributed");
    assert!(trace.count(Some(dmi_obs::Cat::Worker), "explore") > 0, "explores recorded");
    assert!(trace.text_summary().contains("scheduler stall total:"));
}

/// The observability non-interference oracle for the serve path: the
/// c=64 gateway mix served with tracing enabled must yield per-request
/// run traces byte-identical to the untraced serve.
#[test]
#[ignore = "rip-heavy: CI runs these in release via `-- --ignored`"]
fn traced_gateway_serve_is_byte_identical_to_untraced() {
    use dmi_agent::{Gateway, GatewayConfig, InterfaceMode, RunConfig, ServeApp, ServeRequest};
    use dmi_integration_tests::dmi_models;
    use std::sync::Arc;

    let _g = obs_guard();
    // Models are ripped outside the observation window: fixture setup is
    // not part of the serve being traced.
    let models = dmi_models();
    let tasks: Vec<Arc<dmi_agent::AgentTask>> =
        dmi_tasks::all_tasks().into_iter().map(Arc::new).collect();
    let mix = || -> Vec<ServeRequest> {
        (0..64)
            .map(|i| {
                let task = &tasks[i % tasks.len()];
                ServeRequest {
                    tenant: format!("tenant-{}", i % 5),
                    app: task.app.name().to_string(),
                    task: Arc::clone(task),
                    cfg: RunConfig::test(
                        dmi_llm::CapabilityProfile::gpt5_medium(),
                        if i % 3 == 0 { InterfaceMode::GuiOnly } else { InterfaceMode::GuiPlusDmi },
                        i as u64,
                    ),
                }
            })
            .collect()
    };
    let gateway = || -> Gateway {
        let apps: Vec<ServeApp> = AppKind::ALL
            .iter()
            .map(|&k| {
                ServeApp::new(
                    k.name(),
                    Session::new(k.launch_small()),
                    models.get(k.name()).cloned(),
                )
            })
            .collect();
        Gateway::new(apps, GatewayConfig { workers: 4, sessions_per_app: 8, max_in_flight: 32 })
    };

    let untraced = gateway().serve(mix());
    assert_eq!(untraced.stats.completed, 64);

    dmi_obs::clear();
    dmi_obs::set_enabled(true);
    let traced = gateway().serve(mix());
    dmi_obs::set_enabled(false);
    let trace = dmi_obs::drain();
    dmi_obs::clear();

    assert_eq!(traced.stats.completed, 64);
    for (i, (a, b)) in traced.outcomes.iter().zip(&untraced.outcomes).enumerate() {
        assert_eq!(
            a.trace.as_ref().map(dmi_agent::RunTrace::identity_bytes),
            b.trace.as_ref().map(dmi_agent::RunTrace::identity_bytes),
            "request {i} ({} on {}): tracing must never change a trace byte",
            a.tenant,
            a.app
        );
    }
    assert!(trace.count(Some(dmi_obs::Cat::Gateway), "round") > 0, "rounds recorded");
}
