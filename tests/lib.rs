//! Shared fixtures for the cross-crate integration tests.

use dmi_core::{Dmi, DmiBuildConfig};
use dmi_gui::Session;
use dmi_llm::CapabilityProfile;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// A capability profile that never errs (oracle executor).
pub fn perfect_profile() -> CapabilityProfile {
    let mut p = CapabilityProfile::gpt5_medium();
    p.policy_err = 0.0;
    p.dmi_mech_err = 0.0;
    p.grounding_err = 0.0;
    p.composite_err = 0.0;
    p.instruction_noise = 0.0;
    p.recover_prob = 1.0;
    p
}

/// Small-app DMI models, ripped once per test binary and shared by every
/// caller (and every gateway tenant) through the `Arc`.
pub fn dmi_models() -> &'static HashMap<&'static str, Arc<Dmi>> {
    static MODELS: OnceLock<HashMap<&'static str, Arc<Dmi>>> = OnceLock::new();
    MODELS.get_or_init(|| {
        let mut m = HashMap::new();
        for kind in dmi_apps::AppKind::ALL {
            let mut s = Session::new(kind.launch_small());
            let (dmi, _) = Dmi::build(&mut s, &DmiBuildConfig::office(kind.name()));
            m.insert(kind.name(), Arc::new(dmi));
        }
        m
    })
}
