//! Observability integration tests: OFF-path silence through real rips,
//! Chrome-trace export validity, span nesting, virtual-time determinism,
//! and the stats-vs-tallies drift cross-checks.
//!
//! The recorder's enable flag is process-global, so every test that
//! opens an observation window serializes on one lock — tests can never
//! observe each other's events. The shared fleet fixture is ripped once
//! and inspected by every trace-shape test.

use dmi_apps::AppKind;
use dmi_core::parallel::{rip_fleet, FleetEntry, ParRipConfig};
use dmi_core::ripper::{rip, RipConfig, RipStats};
use dmi_gui::Session;
use dmi_obs::{Cat, Clock, Event, Trace};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn office_entries() -> Vec<FleetEntry> {
    AppKind::ALL
        .iter()
        .map(|k| {
            FleetEntry::new(k.name(), Session::new(k.launch_small()), RipConfig::office(k.name()))
        })
        .collect()
}

/// One traced 3-app / 2-worker fleet rip, shared by every test that only
/// inspects the resulting trace (the rip is the expensive part).
struct FleetObs {
    trace: Trace,
    tallies: BTreeMap<&'static str, u64>,
    stats: Vec<RipStats>,
}

fn fleet_obs() -> &'static FleetObs {
    static OBS: OnceLock<FleetObs> = OnceLock::new();
    OBS.get_or_init(|| {
        dmi_obs::clear();
        dmi_obs::set_enabled(true);
        let mut entries = office_entries();
        let out =
            rip_fleet(&mut entries, &ParRipConfig { workers: 2, speculation: 2, spec_walk: 4 });
        dmi_obs::set_enabled(false);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|o| !o.fell_back()), "Office apps fork");
        let trace = dmi_obs::drain();
        let tallies = dmi_obs::tallies();
        dmi_obs::clear();
        FleetObs { trace, tallies, stats: out.iter().map(|o| o.stats).collect() }
    })
}

#[test]
fn off_path_records_nothing_through_a_real_rip() {
    let _g = guard();
    dmi_obs::set_enabled(false);
    dmi_obs::clear();
    let mut cfg = RipConfig::office("Word");
    cfg.max_clicks = Some(40);
    let mut s = Session::new(AppKind::Word.launch_small());
    let (g, stats) = rip(&mut s, &cfg);
    assert!(g.node_count() > 0 && stats.clicks > 0, "the rip itself ran");
    let t = dmi_obs::drain();
    assert!(t.events.is_empty(), "a disabled recorder buffers nothing through a full rip");
    assert_eq!(t.dropped, 0);
    assert!(dmi_obs::tallies().is_empty(), "a disabled recorder tallies nothing");
}

#[test]
fn traced_fleet_distinguishes_stalls_from_explores_and_exports_valid_chrome_json() {
    let _g = guard();
    let obs = fleet_obs();

    // Stall attribution: scheduler stall spans and worker explore spans
    // are distinct, both present, and the summary totals them apart.
    let stalls = obs.trace.count(Some(Cat::Scheduler), "stall");
    let explores = obs.trace.count(Some(Cat::Worker), "explore");
    assert!(stalls > 0, "commit lanes blocked at least once");
    assert!(explores > 0, "workers explored candidates");
    assert!(obs.trace.total_dur_us(Some(Cat::Worker), "explore") > 0);
    let summary = obs.trace.text_summary();
    assert!(summary.contains("scheduler stall total:"), "{summary}");
    assert!(summary.contains("worker explore total:"), "{summary}");

    // The Chrome export round-trips through the JSON parser as a valid
    // trace-event array.
    let json = obs.trace.to_chrome_json();
    let v = serde_json::parse_value(&json).expect("chrome export is valid JSON");
    let arr = v.as_array().expect("top level is an array");
    let has_virtual = obs.trace.events.iter().any(|e| e.clock == Clock::Virtual);
    let metadata = if has_virtual { 2 } else { 1 };
    assert_eq!(
        arr.len(),
        obs.trace.events.len() + metadata,
        "every event exported, plus one process-name record per timeline"
    );
    for e in arr {
        let o = e.as_object().expect("every element is an object");
        assert!(o.get("name").and_then(|n| n.as_str()).is_some());
        let ph = o.get("ph").and_then(|p| p.as_str()).expect("phase present");
        assert!(matches!(ph, "X" | "i" | "M"), "unexpected phase {ph}");
        assert!(o.get("pid").and_then(|p| p.as_u64()).is_some());
        if ph == "X" {
            assert!(o.get("dur").and_then(|d| d.as_u64()).is_some(), "complete spans carry dur");
        }
    }
}

/// Wall-clock events of one thread come out of one ring, so RAII spans
/// recorded on a thread must nest: every `scheduler.park` interval lies
/// inside the enclosing `rip.fleet` span, and one worker thread's
/// `explore` spans never overlap each other.
#[test]
fn raii_spans_balance_per_thread() {
    let _g = guard();
    let obs = fleet_obs();
    let fleet = obs
        .trace
        .events
        .iter()
        .find(|e| e.name == "rip.fleet")
        .expect("the fleet rip records its top-level span");
    let fleet_end = fleet.ts_us + fleet.dur_us;
    for e in obs.trace.events.iter().filter(|e| e.name == "scheduler.park") {
        assert_eq!(e.tid, fleet.tid, "parks happen on the scheduler thread");
        assert!(e.ts_us >= fleet.ts_us && e.ts_us + e.dur_us <= fleet_end, "park nests in fleet");
    }
    let mut by_tid: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    for e in obs.trace.events.iter().filter(|e| e.name == "explore") {
        by_tid.entry(e.tid).or_default().push(e);
    }
    assert!(!by_tid.is_empty());
    for (tid, spans) in by_tid {
        // Drained order is (ts, tid)-sorted already.
        for w in spans.windows(2) {
            assert!(
                w[0].ts_us + w[0].dur_us <= w[1].ts_us,
                "thread {tid}: explore spans are sequential, not overlapping"
            );
        }
    }
}

fn vt_events(trace: &Trace) -> Vec<(&'static str, u64, u64, u64)> {
    trace
        .events
        .iter()
        .filter(|e| e.clock == Clock::Virtual)
        .map(|e| (e.name, e.ts_us, e.dur_us, e.lane))
        .collect()
}

fn serve_traced(n: usize) -> (dmi_agent::ServeReport, Trace, BTreeMap<&'static str, u64>) {
    use dmi_agent::{Gateway, GatewayConfig, InterfaceMode, RunConfig, ServeApp, ServeRequest};
    use std::sync::Arc;

    let tasks: Vec<Arc<dmi_agent::AgentTask>> =
        dmi_tasks::all_tasks().into_iter().map(Arc::new).collect();
    let requests: Vec<ServeRequest> = (0..n)
        .map(|i| {
            let task = &tasks[i % tasks.len()];
            ServeRequest {
                tenant: format!("tenant-{}", i % 3),
                app: task.app.name().to_string(),
                task: Arc::clone(task),
                cfg: RunConfig::test(
                    dmi_integration_tests::perfect_profile(),
                    InterfaceMode::GuiOnly,
                    i as u64,
                ),
            }
        })
        .collect();
    let apps: Vec<ServeApp> = AppKind::ALL
        .iter()
        .map(|&k| ServeApp::new(k.name(), Session::new(k.launch_small()), None))
        .collect();
    let mut gw =
        Gateway::new(apps, GatewayConfig { workers: 2, sessions_per_app: 2, max_in_flight: 8 });

    dmi_obs::clear();
    dmi_obs::set_enabled(true);
    let report = gw.serve(requests);
    dmi_obs::set_enabled(false);
    let trace = dmi_obs::drain();
    let tallies = dmi_obs::tallies();
    dmi_obs::clear();
    (report, trace, tallies)
}

/// Virtual-time spans ride the deterministic virtual clock: identical
/// run to run, with a non-overlapping monotonic round timeline and task
/// lifecycles that match the reported outcomes exactly.
#[test]
fn virtual_time_spans_are_deterministic_and_monotonic() {
    let _g = guard();
    let (report_a, trace_a, _) = serve_traced(12);
    let (report_b, trace_b, _) = serve_traced(12);
    assert_eq!(report_a.stats.completed, 12);
    assert_eq!(report_b.stats.completed, 12);

    let vt_a = vt_events(&trace_a);
    let vt_b = vt_events(&trace_b);
    assert!(!vt_a.is_empty(), "serving records virtual-time spans");
    assert_eq!(vt_a, vt_b, "virtual timeline is identical run to run");

    // Round spans tile the virtual clock: non-overlapping, monotonic.
    let rounds: Vec<&(&str, u64, u64, u64)> =
        vt_a.iter().filter(|(name, ..)| *name == "round.vt").collect();
    assert!(!rounds.is_empty());
    let mut sorted = rounds.clone();
    sorted.sort_by_key(|(_, ts, _, lane)| (*ts, *lane));
    for w in sorted.windows(2) {
        let (_, ts0, dur0, _) = *w[0];
        let (_, ts1, ..) = *w[1];
        assert!(ts0 + dur0 <= ts1, "round spans never overlap");
    }

    // Per-tenant task lifecycles: every `task` span's admit/finish pair
    // matches a reported outcome on the same virtual clock.
    let task_spans: Vec<_> = vt_a.iter().filter(|(name, ..)| *name == "task").collect();
    assert_eq!(task_spans.len(), 12, "one lifecycle span per completed task");
    for (_, ts, dur, _lane) in task_spans {
        let finish = ts + dur;
        assert!(
            report_a.outcomes.iter().any(|o| {
                (o.admit_vt * 1e6).round() as u64 == *ts
                    && (o.finish_vt * 1e6).round() as u64 == finish
            }),
            "task span [{ts}, {finish}] matches a reported outcome"
        );
    }
}

/// The rip-side drift cross-check: every engine stat field and its obs
/// tally are incremented at the same sites, so a traced rip must report
/// identical numbers through both channels — a counter accumulated twice
/// (or a site that forgot one side) breaks the equality.
#[test]
fn rip_stats_match_obs_tallies() {
    let _g = guard();
    dmi_obs::clear();
    dmi_obs::set_enabled(true);
    let mut cfg = RipConfig::office("Word");
    cfg.max_clicks = Some(300);
    let mut s = Session::new(AppKind::Word.launch_small());
    let (_graph, stats) = rip(&mut s, &cfg);
    dmi_obs::set_enabled(false);
    let tallies = dmi_obs::tallies();
    let cs = s.capture_stats();
    dmi_obs::clear();

    let t = |k: &str| tallies.get(k).copied().unwrap_or(0);
    assert_eq!(stats.clicks, t("rip.clicks"), "clicks");
    assert_eq!(stats.snapshots, t("rip.snapshots"), "snapshots");
    assert_eq!(stats.restarts, t("rip.restarts"), "restarts");
    assert_eq!(stats.esc_recoveries, t("rip.esc_recoveries"), "esc recoveries");
    assert_eq!(stats.esc_presses, t("rip.esc_presses"), "esc presses");
    assert_eq!(stats.blocklisted, t("rip.blocklisted"), "blocklisted");
    assert_eq!(stats.replay_failures, t("rip.replay_failures"), "replay failures");
    assert_eq!(stats.windows_seen, t("rip.windows_seen"), "windows seen");
    assert_eq!(cs.captures, t("capture.captures"), "captures");
    assert_eq!(cs.full_hits, t("capture.full_hits"), "full hits");
    assert_eq!(cs.pristine_hits, t("capture.pristine_hits"), "pristine hits");
    assert_eq!(cs.windows_reused, t("capture.windows_reused"), "windows reused");
    assert_eq!(cs.windows_rebuilt, t("capture.windows_rebuilt"), "windows rebuilt");
    assert_eq!(cs.pool_hits, t("capture.pool_hits"), "pool hits");
    assert_eq!(cs.pool_misses, t("capture.pool_misses"), "pool misses");
}

/// The fleet-side drift cross-check: lane commit counters and pooled
/// worker-unit harvests must add up to exactly the per-event tallies —
/// a unit harvested twice (or a shard session skipped) breaks it.
#[test]
fn fleet_stats_match_obs_tallies() {
    let _g = guard();
    let obs = fleet_obs();
    let t = |k: &str| obs.tallies.get(k).copied().unwrap_or(0);
    let sum = |f: fn(&RipStats) -> u64| obs.stats.iter().map(f).sum::<u64>();
    assert_eq!(sum(|s| s.windows_seen), t("rip.windows_seen"), "windows seen (commit-derived)");
    assert_eq!(sum(|s| s.clicks), t("rip.clicks"), "clicks (worker effort)");
    assert_eq!(sum(|s| s.snapshots), t("rip.snapshots"), "snapshots (worker effort)");
    assert_eq!(sum(|s| s.blocklisted), t("rip.blocklisted"), "blocklist hits");
    assert_eq!(sum(|s| s.pool_hits), t("capture.pool_hits"), "capture-pool hits");
    assert_eq!(sum(|s| s.pool_misses), t("capture.pool_misses"), "capture-pool misses");
    assert!(t("capture.pool_hits") > 0, "shards served shared captures");
    // Speculation ledger: worker-side publications tally as `spec.depth`
    // at the same site as the stat, scheduler-side adoptions and waste at
    // theirs — and on an all-healthy fleet every publication is resolved
    // one way or the other.
    assert_eq!(sum(|s| s.spec_published), t("spec.depth"), "speculations published");
    assert_eq!(sum(|s| s.spec_adopted), t("spec.adopt"), "speculations adopted");
    assert_eq!(sum(|s| s.spec_wasted), t("spec.waste"), "speculations wasted");
    assert_eq!(
        t("spec.depth"),
        t("spec.adopt") + t("spec.waste"),
        "every published speculation is adopted or counted as waste"
    );
}

/// The serve-side drift cross-check: gateway counters harvested from
/// pooled sessions must equal the per-event tallies. This is the pin for
/// the checkin double-count fix — re-reading counters already harvested
/// at checkin made `capture_pool_*` drift high by exactly the re-read.
#[test]
fn serve_stats_match_obs_tallies() {
    let _g = guard();
    let (report, _trace, tallies) = serve_traced(12);
    let t = |k: &str| tallies.get(k).copied().unwrap_or(0);
    assert_eq!(report.stats.completed as u64, t("gateway.completed"), "completed");
    assert_eq!(report.stats.faulted as u64, t("gateway.faulted"), "faulted");
    assert_eq!(report.stats.completed as u64, t("gateway.admitted"), "all admissions completed");
    assert_eq!(report.stats.capture_pool_hits, t("capture.pool_hits"), "capture pool hits");
    assert_eq!(report.stats.capture_pool_misses, t("capture.pool_misses"), "capture pool misses");
    // Virtual seconds vs the settled-batch tally: equal up to the µs
    // rounding applied once per settled round.
    let vt_us = (report.stats.virtual_secs * 1e6).round() as i64;
    let tallied = t("llm.overlapped_us") as i64;
    assert!(
        (vt_us - tallied).abs() <= report.stats.rounds as i64,
        "virtual clock {vt_us}us vs tallied {tallied}us (rounds={})",
        report.stats.rounds
    );
    assert!(t("llm.calls") > 0, "batched calls were tallied");
}
