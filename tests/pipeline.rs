//! Offline-pipeline integration: rip → decycle → forest → descriptions,
//! checked across all three full applications' structural properties.

use dmi_core::describe;
use dmi_core::topology::TopoKind;
use dmi_integration_tests::dmi_models;

#[test]
fn forests_preserve_unique_paths_for_all_apps() {
    for kind in dmi_apps::AppKind::ALL {
        let dmi = &dmi_models()[kind.name()];
        assert!(dmi.forest.verify_unique_paths(), "{kind}: duplicate paths");
        assert!(dmi.forest.len() > 500, "{kind}: forest too small ({})", dmi.forest.len());
    }
}

#[test]
fn word_has_shared_subtrees_with_multiple_entries() {
    // The shared Colors dialog is reachable from several color menus.
    let dmi = &dmi_models()["Word"];
    let multi_entry =
        dmi.forest.shared_roots.iter().filter(|&&r| dmi.forest.references_to(r).len() > 1).count();
    assert!(multi_entry >= 1, "expected a merge-node dialog with several entries");
}

#[test]
fn entry_map_is_consistent() {
    for kind in dmi_apps::AppKind::ALL {
        let dmi = &dmi_models()[kind.name()];
        for (&r, &root) in &dmi.forest.entry_map {
            match dmi.forest.nodes[r].kind {
                TopoKind::Reference { subtree_root } => assert_eq!(subtree_root, root),
                ref other => panic!("{kind}: entry {r} is not a reference ({other:?})"),
            }
            assert!(dmi.forest.shared_roots.contains(&root));
        }
    }
}

#[test]
fn core_topology_is_cheaper_than_full() {
    for kind in dmi_apps::AppKind::ALL {
        let dmi = &dmi_models()[kind.name()];
        let full = describe::full_description(&dmi.forest, &dmi.describe);
        assert!(
            dmi.core_tokens() <= full.tokens(),
            "{kind}: core {} > full {}",
            dmi.core_tokens(),
            full.tokens()
        );
    }
}

#[test]
fn further_query_recovers_pruned_font_list() {
    let dmi = &dmi_models()["Word"];
    // The font gallery is a large enumeration: pruned from the core.
    let font_gallery =
        dmi.forest.nodes.iter().find(|n| n.name == "Font Name").expect("font gallery modeled");
    let last_font = dmi
        .forest
        .nodes
        .iter()
        .rfind(|n| n.parent == Some(font_gallery.id))
        .expect("font entries modeled");
    assert!(!dmi.core_includes(last_font.id), "font list tail should be pruned from the core");
    let expansion = dmi.further_query(&[font_gallery.id as i64]);
    assert!(expansion.contains(&last_font.name), "branch query reveals the pruned entries");
}

#[test]
fn navigation_depth_exceeds_ten_somewhere() {
    // §5.1: navigation depth exceeding 10 in the modeled apps.
    let mut max_depth = 0usize;
    for kind in dmi_apps::AppKind::ALL {
        let dmi = &dmi_models()[kind.name()];
        for n in &dmi.forest.nodes {
            // Count full path length through entries for shared subtrees.
            let mut depth = dmi.forest.path_to(n.id).len();
            if let Some(root) = dmi.forest.in_shared_subtree(n.id) {
                if let Some(&r) = dmi.forest.references_to(root).first() {
                    depth += dmi.forest.path_to(r).len();
                }
            }
            max_depth = max_depth.max(depth);
        }
    }
    assert!(max_depth >= 10, "max navigation depth {max_depth}");
}

#[test]
fn ambiguous_blue_cells_exist_and_disambiguate_by_path() {
    let dmi = &dmi_models()["Word"];
    let blues: Vec<usize> = dmi
        .forest
        .nodes
        .iter()
        .filter(|n| n.name == "Blue" && dmi.forest.is_functional_leaf(n.id))
        .map(|n| n.id)
        .collect();
    assert!(blues.len() >= 4, "only {} Blue cells", blues.len());
    // Each has a unique path even though names collide.
    let mut paths: Vec<Vec<usize>> = blues.iter().map(|&b| dmi.forest.path_to(b)).collect();
    paths.sort();
    paths.dedup();
    assert_eq!(paths.len(), blues.len());
}

#[test]
fn offline_model_round_trips_through_json() {
    // §5.2: the model is version-specific but reusable across machines.
    let dmi = &dmi_models()["Word"];
    let json = dmi.to_json();
    let restored = dmi_core::Dmi::from_json(&json).expect("restores");
    assert_eq!(restored.forest.len(), dmi.forest.len());
    assert_eq!(restored.core_text(), dmi.core_text());
    // The restored model drives a fresh session end to end.
    let mut s = dmi_gui::Session::new(dmi_apps::AppKind::Word.launch_small());
    let narrow = restored
        .forest
        .nodes
        .iter()
        .find(|n| n.name == "Narrow" && restored.forest.is_functional_leaf(n.id))
        .unwrap()
        .id;
    let out = restored.visit_json(&mut s, &format!(r#"[{{"id": {narrow}}}]"#));
    assert!(out.ok(), "{:?}", out.error);
}

#[test]
fn offline_model_saves_and_loads_from_disk() {
    let dmi = &dmi_models()["PowerPoint"];
    let path = std::env::temp_dir().join("dmi-ppt-model.json");
    dmi.save(&path).expect("save");
    let loaded = dmi_core::Dmi::load(&path).expect("load");
    assert_eq!(loaded.forest.len(), dmi.forest.len());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn forest_keys_are_interned_fingerprints() {
    // ROADMAP "Forest-side key interning": every forest node carries the
    // fingerprint of its control id, computed once at build time, so the
    // executor's exact pass never re-hashes identifiers per resolve.
    for kind in dmi_apps::AppKind::ALL {
        let dmi = &dmi_models()[kind.name()];
        for n in &dmi.forest.nodes {
            assert_eq!(
                n.key,
                dmi_uia::ControlKey::of_id(&n.control),
                "{kind}: stale key on forest node {}",
                n.id
            );
        }
    }
}

#[test]
fn dmi_build_uses_esc_recovery_by_default() {
    // The offline phase inherits the ripper's §4.1 fast state restoration:
    // almost every branch recovers via Esc instead of an app restart.
    let mut s = dmi_gui::Session::new(dmi_apps::AppKind::Word.launch_small());
    let (_, stats) = dmi_core::Dmi::build(&mut s, &dmi_core::DmiBuildConfig::office("Word"));
    assert!(stats.rip.esc_recoveries > 100 * stats.rip.restarts, "{:?}", stats.rip);
    // Build leaves the session freshly restarted: one beyond the rip's own.
    assert_eq!(s.restart_count(), stats.rip.restarts + 1, "restarts tracked by the session");
    assert!(
        s.action_count() > s.restart_count() * 100,
        "restarts must not dominate the action count"
    );
}
