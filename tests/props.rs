//! Property-based tests over core invariants.

use dmi_apps::model::sheet::{Addr, Range};
use dmi_core::graph::{ung_from_parts, Ung, UngNode};
use dmi_core::tokens;
use dmi_core::topology::{build_forest, decycle, is_acyclic, ForestConfig};
use dmi_uia::ident::{levenshtein, path_similarity, string_similarity};
use dmi_uia::{ControlId, ControlType};
use proptest::prelude::*;

/// Random DAG-ish edge lists over `n` nodes (may contain cycles).
fn arb_graph(max_nodes: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2..max_nodes).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..n * 3);
        (Just(n), edges)
    })
}

fn build_ung(n: usize, edges: &[(usize, usize)]) -> Ung {
    let names: Vec<(String, ControlType)> = (0..n)
        .map(|i| {
            let ct = match i % 4 {
                0 => ControlType::Button,
                1 => ControlType::MenuItem,
                2 => ControlType::ListItem,
                _ => ControlType::TabItem,
            };
            (format!("N{i}"), ct)
        })
        .collect();
    let named: Vec<(&str, ControlType)> = names.iter().map(|(s, t)| (s.as_str(), *t)).collect();
    ung_from_parts(&named, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decycle_always_yields_acyclic((n, edges) in arb_graph(24)) {
        let mut g = build_ung(n, &edges);
        decycle(&mut g);
        prop_assert!(is_acyclic(&g));
    }

    #[test]
    fn decycle_preserves_reachability((n, edges) in arb_graph(24)) {
        let mut g = build_ung(n, &edges);
        let before = g.reachable().len();
        decycle(&mut g);
        prop_assert_eq!(g.reachable().len(), before);
    }

    #[test]
    fn forest_has_unique_paths_any_threshold(
        (n, edges) in arb_graph(20),
        threshold in 0usize..40,
    ) {
        let mut g = build_ung(n, &edges);
        decycle(&mut g);
        let (forest, _) = build_forest(&g, &ForestConfig { externalize_threshold: threshold });
        prop_assert!(forest.verify_unique_paths());
        // Consecutive ids.
        for (i, node) in forest.nodes.iter().enumerate() {
            prop_assert_eq!(i, node.id);
        }
    }

    #[test]
    fn forest_externalization_never_grows_beyond_cloning(
        (n, edges) in arb_graph(18),
    ) {
        let mut g = build_ung(n, &edges);
        decycle(&mut g);
        let (_, ext) = build_forest(&g, &ForestConfig { externalize_threshold: 0 });
        let (_, clone) = build_forest(&g, &ForestConfig { externalize_threshold: usize::MAX });
        // Externalizing every merge node is never larger than full cloning.
        prop_assert!(ext.forest_nodes <= clone.forest_nodes + 2 * ext.merge_nodes);
    }

    #[test]
    fn token_count_is_subadditive(a in ".{0,40}", b in ".{0,40}") {
        let joined = format!("{a}{b}");
        prop_assert!(tokens::count(&joined) <= tokens::count(&a) + tokens::count(&b) + 1);
    }

    #[test]
    fn levenshtein_is_a_metric(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn similarity_is_bounded(a in ".{0,24}", b in ".{0,24}") {
        let s = string_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        let p = path_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn control_id_round_trips(
        primary in "[a-zA-Z0-9 ]{1,20}",
        path in "[a-zA-Z0-9 /]{0,40}",
        type_idx in 0usize..41,
    ) {
        let id = ControlId {
            primary,
            control_type: ControlType::ALL[type_idx],
            ancestor_path: path,
        };
        prop_assert_eq!(ControlId::decode(&id.encode()), Some(id));
    }

    #[test]
    fn addr_round_trips(row in 0usize..5000, col in 0usize..700) {
        let a = Addr { row, col };
        prop_assert_eq!(Addr::parse(&a.to_a1()), Some(a));
    }

    #[test]
    fn range_iter_size_matches(r1 in 0usize..30, c1 in 0usize..12, r2 in 0usize..30, c2 in 0usize..12) {
        let range = Range { from: Addr { row: r1, col: c1 }, to: Addr { row: r2, col: c2 } };
        let expect = (r1.abs_diff(r2) + 1) * (c1.abs_diff(c2) + 1);
        prop_assert_eq!(range.iter().count(), expect);
    }

    #[test]
    fn ung_dedup_is_idempotent(name in "[a-z]{1,10}") {
        let mut g = Ung::new();
        let node = UngNode {
            control: ControlId {
                primary: name.clone(),
                control_type: ControlType::Button,
                ancestor_path: "W".into(),
            },
            name,
            control_type: ControlType::Button,
            help_text: String::new(),
        };
        let a = g.add_node(node.clone());
        let b = g.add_node(node);
        prop_assert_eq!(a, b);
        prop_assert_eq!(g.node_count(), 2);
    }
}

#[test]
fn alpha_labels_are_unique_for_large_screens() {
    let labels: Vec<String> = (0..2000).map(dmi_core::screen::alpha_label).collect();
    let mut sorted = labels.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), labels.len());
}
