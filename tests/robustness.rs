//! Robustness integration: UI instability (late loading, name variation),
//! dynamic renames, trap/external hazards, and the GUI fallback.

use dmi_core::{label_screen, Dmi, DmiBuildConfig};
use dmi_gui::{InstabilityModel, Session};

/// Builds the Word DMI model on a *stable* session, then executes against
/// an *unstable* one — the §3.4 robustness scenario.
fn word_dmi() -> Dmi {
    let mut s = Session::new(dmi_apps::AppKind::Word.launch_small());
    Dmi::build(&mut s, &DmiBuildConfig::office("Word")).0
}

fn unstable_word(seed: u64, late: f64, name_var: f64) -> Session {
    Session::with_instability(
        dmi_apps::AppKind::Word.launch_small(),
        InstabilityModel::new(seed, late, name_var),
    )
}

#[test]
fn visit_survives_late_loading_menus() {
    let dmi = word_dmi();
    // Every popup's children lag one snapshot: retries must absorb it.
    let mut s = unstable_word(3, 1.0, 0.0);
    let narrow = dmi
        .forest
        .nodes
        .iter()
        .find(|n| n.name == "Narrow" && dmi.forest.is_functional_leaf(n.id))
        .unwrap()
        .id;
    let out = dmi.visit_json(&mut s, &format!(r#"[{{"id": {narrow}}}]"#));
    assert!(out.ok(), "{:?}", out.error);
    let w = s.app().as_any().downcast_ref::<dmi_apps::WordApp>().unwrap();
    assert_eq!(w.doc.page.margins, (0.5, 0.5, 0.5, 0.5));
}

#[test]
fn visit_survives_mild_name_variation() {
    let dmi = word_dmi();
    let mut successes = 0;
    let mut attempts = 0;
    for seed in 0..6u64 {
        let mut s = unstable_word(seed, 0.0, 0.15);
        let narrow = dmi
            .forest
            .nodes
            .iter()
            .find(|n| n.name == "Narrow" && dmi.forest.is_functional_leaf(n.id))
            .unwrap()
            .id;
        attempts += 1;
        let out = dmi.visit_json(&mut s, &format!(r#"[{{"id": {narrow}}}]"#));
        let w = s.app().as_any().downcast_ref::<dmi_apps::WordApp>().unwrap();
        if out.ok() && w.doc.page.margins == (0.5, 0.5, 0.5, 0.5) {
            successes += 1;
        }
    }
    assert!(
        successes * 3 >= attempts * 2,
        "fuzzy matching should absorb most name variation: {successes}/{attempts}"
    );
}

#[test]
fn dynamic_rename_breaks_exact_match_but_not_everything() {
    // §6's example: typing "+1" renames "Next" to "Go To"; the modeled
    // topology is stale. Exact matching fails; the executor reports a
    // structured ControlNotFound instead of acting on the wrong control.
    let dmi = word_dmi();
    let mut s = Session::new(dmi_apps::AppKind::Word.launch_small());
    let (find_what, fw_refs) =
        dmi_agent::dmi_agent::resolve_target(&dmi.forest, &dmi_llm::TargetQuery::name("Find what"))
            .unwrap();
    let (next, next_refs) =
        dmi_agent::dmi_agent::resolve_target(&dmi.forest, &dmi_llm::TargetQuery::name("Next"))
            .unwrap();
    let json = format!(
        r#"[{{"id": {find_what}, "entry_ref_id": {fw_refs:?}, "text": "+1"}}, {{"shortcut_key": "Enter"}}, {{"id": {next}, "entry_ref_id": {next_refs:?}}}]"#
    );
    let out = dmi.visit_json(&mut s, &json);
    // "Next" was renamed "Go To" mid-call. Either the fuzzy matcher
    // rejects it (structured error) or — if it were similar enough —
    // resolves it; it must not silently click something unrelated.
    match out.error {
        Some(dmi_core::DmiError::ControlNotFound { name, .. }) => assert_eq!(name, "Next"),
        None => {
            // Accept only if it really reached the renamed button.
            assert_eq!(out.executed.len(), 3);
        }
        Some(other) => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn screen_labels_follow_live_names() {
    let mut s = unstable_word(5, 0.0, 1.0);
    let snap = s.snapshot();
    let screen = label_screen(&snap);
    // The provider-side names are unperturbed; screen labels expose the
    // varied ones, so label-based interfaces keep working regardless.
    assert!(!screen.is_empty());
    for e in &screen.entries {
        assert!(!e.label.is_empty());
    }
}

#[test]
fn disabled_control_feedback_is_structured() {
    let dmi = word_dmi();
    let mut s = Session::new(dmi_apps::AppKind::Word.launch_small());
    let paste = dmi
        .forest
        .nodes
        .iter()
        .find(|n| n.name == "Paste" && dmi.forest.is_functional_leaf(n.id))
        .unwrap()
        .id;
    let out = dmi.visit_json(&mut s, &format!(r#"[{{"id": {paste}}}]"#));
    match out.error {
        Some(dmi_core::DmiError::ControlDisabled { name, path }) => {
            assert_eq!(name, "Paste");
            assert!(path.contains("Word"));
        }
        other => panic!("expected structured disabled feedback, got {other:?}"),
    }
}

#[test]
fn executor_closes_stale_windows_with_ok_priority() {
    let dmi = word_dmi();
    let mut s = Session::new(dmi_apps::AppKind::Word.launch_small());
    // Open the Find & Replace dialog out-of-band.
    let tree = s.app().tree();
    let launcher = tree
        .iter()
        .find(|(i, w)| w.name == "Replace" && tree.is_shown(*i))
        .map(|(i, _)| i)
        .unwrap();
    s.click(launcher).unwrap();
    assert_eq!(s.app().tree().open_windows().len(), 2);
    // Visiting a ribbon control must close the dialog first.
    let bold = dmi
        .forest
        .nodes
        .iter()
        .find(|n| n.name == "Bold" && dmi.forest.is_functional_leaf(n.id))
        .unwrap()
        .id;
    let out = dmi.visit_json(&mut s, &format!(r#"[{{"id": {bold}}}]"#));
    assert!(out.ok(), "{:?}", out.error);
    assert_eq!(s.app().tree().open_windows().len(), 1);
}

#[test]
fn trap_controls_stay_trapped_for_imperative_use() {
    let mut s = Session::new(dmi_apps::AppKind::PowerPoint.launch_small());
    let tree = s.app().tree();
    let show_tab = tree.find_by_name("Slide Show").unwrap();
    s.click(show_tab).unwrap();
    let tree = s.app().tree();
    let beginning = tree
        .iter()
        .find(|(i, w)| w.name == "From Beginning" && tree.is_shown(*i))
        .map(|(i, _)| i)
        .unwrap();
    s.click(beginning).unwrap();
    assert!(s.is_trapped());
    assert!(s.click(show_tab).is_err(), "trapped UI rejects further input");
}

#[test]
fn enforced_access_clicks_navigation_nodes() {
    // §5.7 "Explicit navigation-node access": the enforced parameter
    // bypasses the non-leaf filter when the caller really wants a
    // navigation node (e.g. just open the Design tab).
    let dmi = word_dmi();
    let mut s = Session::new(dmi_apps::AppKind::Word.launch_small());
    let design =
        dmi.forest.nodes.iter().find(|n| n.name == "Design" && !n.children.is_empty()).unwrap().id;
    // Without enforcement: filtered, nothing happens.
    let out = dmi.visit_json(&mut s, &format!(r#"[{{"id": {design}}}]"#));
    assert!(out.executed.is_empty());
    assert_eq!(out.filtered.len(), 1);
    // With enforcement: the tab is actually selected.
    let out = dmi.visit_json(&mut s, &format!(r#"[{{"id": {design}, "enforced": true}}]"#));
    assert!(out.ok(), "{:?}", out.error);
    assert_eq!(out.executed.len(), 1);
    let tree = s.app().tree();
    let tab = tree.find_by_name("Design").unwrap();
    assert!(tree.widget(tab).selected, "Design tab selected via enforced access");
}
