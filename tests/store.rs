//! Persistence integration tests: the binary store round trip at the
//! workspace level, its failure modes, and the two warm paths it powers
//! (gateway capture warm boot, incremental re-rips).
//!
//! Tier-1 tests exercise the codec over fuzz-generated adversarial apps
//! (round trips must be lossless *and* re-encode byte-identically),
//! check that every corruption class surfaces a typed [`StoreError`]
//! rather than a panic, and prove a store-booted gateway serves traces
//! byte-identical to a conventionally rip-booted one.
//!
//! The `#[ignore]`d oracles are the release-gated acceptance bar:
//! `load(save(rip))` byte-identity for all three Office apps, and the
//! Word version chain where `rip_incremental(v_{n+1}, stored_v_n)` must
//! be byte-identical to a cold rip of v_{n+1} while confirming a
//! nonzero fraction of journaled explorations — and a same-build warm
//! re-rip must hit the stored capture export (`pool_warm_hits > 0`).

use dmi_apps::AppKind;
use dmi_core::fuzz::{AdversarialApp, AppSpec};
use dmi_core::RipConfig;
use dmi_gui::Session;
use dmi_store::{Store, StoreError, StoredCaptures, StoredRip};

/// Canonical UNG bytes — the representation the oracles pin.
fn ung_bytes(g: &dmi_core::Ung) -> String {
    serde_json::to_string(g).expect("UNGs serialize")
}

/// A fresh store under the system temp dir, unique per test.
fn temp_store(tag: &str) -> Store {
    let dir = std::env::temp_dir().join(format!("dmi-store-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Store::open(dir).expect("temp store opens")
}

/// Records a fuzz app's rip and capture export under a rip-sized pool.
fn record_fuzz(seed: u64, max_ops: usize) -> (StoredRip, StoredCaptures) {
    let spec = AppSpec::generate(seed, max_ops);
    let mut s = Session::new(AdversarialApp::launch(spec));
    s.set_capture_pool(Some(dmi_store::recording_pool()));
    let app = format!("fuzz-{seed}");
    let rip = dmi_store::record_rip(&app, &mut s, &RipConfig::default());
    let caps = dmi_store::export_captures(&app, &mut s);
    (rip, caps)
}

/// Codec round trips over fuzz-generated apps: decoding must be
/// lossless field-for-field, and re-encoding the decoded artifact must
/// reproduce the original bytes (the encoding is canonical — there is
/// exactly one byte string per artifact).
#[test]
fn fuzz_app_artifacts_round_trip_losslessly_and_canonically() {
    for seed in [7u64, 91, 1234] {
        let (rip, caps) = record_fuzz(seed, 20);

        let bytes = dmi_store::encode_rip(&rip);
        let back = dmi_store::decode_rip(&bytes).expect("rip artifact decodes");
        assert_eq!(back.app, rip.app, "seed {seed}: app key");
        assert_eq!(back.pristine, rip.pristine, "seed {seed}: pristine signature");
        assert_eq!(back.stats, rip.stats, "seed {seed}: rip stats");
        assert_eq!(back.journal.entries(), rip.journal.entries(), "seed {seed}: journal");
        assert_eq!(ung_bytes(&back.ung), ung_bytes(&rip.ung), "seed {seed}: UNG bytes");
        assert_eq!(dmi_store::encode_rip(&back), bytes, "seed {seed}: canonical re-encode");

        let cbytes = dmi_store::encode_captures(&caps);
        let cback = dmi_store::decode_captures(&cbytes).expect("capture artifact decodes");
        assert_eq!(cback.app, caps.app, "seed {seed}: capture app key");
        assert_eq!(cback.pristine, caps.pristine, "seed {seed}: capture pristine");
        assert_eq!(cback.entries.len(), caps.entries.len(), "seed {seed}: entry count");
        for (a, b) in cback.entries.iter().zip(&caps.entries) {
            assert_eq!(a.model, b.model, "seed {seed}: capture model");
            assert_eq!(a.hash, b.hash, "seed {seed}: capture hash");
            assert_eq!(a.trace, b.trace, "seed {seed}: capture trace");
            assert_eq!(a.hits, b.hits, "seed {seed}: capture hits");
        }
        assert_eq!(dmi_store::encode_captures(&cback), cbytes, "seed {seed}: canonical caps");
    }
}

/// Every corruption class surfaces the right typed error — never a
/// panic, never a silently wrong artifact.
#[test]
fn corrupt_truncated_and_wrong_version_artifacts_fail_typed() {
    let (rip, caps) = record_fuzz(5, 12);
    let bytes = dmi_store::encode_rip(&rip);

    // Truncation at structural boundaries: empty, mid-magic, end of
    // magic, mid-header, mid-payload, one byte short.
    for cut in [0usize, 3, 8, 12, bytes.len() / 2, bytes.len() - 1] {
        let err = dmi_store::decode_rip(&bytes[..cut]).expect_err("truncated input must fail");
        assert!(
            matches!(err, StoreError::Truncated { .. } | StoreError::Corrupt { .. }),
            "cut at {cut}: unexpected error {err}"
        );
    }

    // Bad magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(dmi_store::decode_rip(&bad), Err(StoreError::BadMagic)));

    // Wrong format version (header bytes 8..12, little-endian).
    let mut bad = bytes.clone();
    bad[8..12].copy_from_slice(&999u32.to_le_bytes());
    assert!(matches!(
        dmi_store::decode_rip(&bad),
        Err(StoreError::UnsupportedVersion { found: 999 })
    ));

    // Kind confusion: a capture artifact is not a rip artifact (and
    // vice versa).
    let cbytes = dmi_store::encode_captures(&caps);
    assert!(matches!(dmi_store::decode_rip(&cbytes), Err(StoreError::WrongKind { .. })));
    assert!(matches!(dmi_store::decode_captures(&bytes), Err(StoreError::WrongKind { .. })));

    // A flipped payload byte fails the section checksum.
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0xFF;
    assert!(matches!(dmi_store::decode_rip(&bad), Err(StoreError::Corrupt { .. })));
}

/// A gateway booted from the store ([`ServeApp::from_store`]) must
/// serve traces byte-identical to one booted the conventional way
/// (live rip via [`Dmi::build`]) — the stored UNG yields the same
/// model, and the warm capture pool never changes a trace byte. A
/// donor from a different build must be refused at boot.
#[test]
fn store_booted_gateway_serves_byte_identical_traces() {
    use dmi_agent::{Gateway, GatewayConfig, InterfaceMode, RunConfig, ServeApp, ServeRequest};
    use dmi_core::{Dmi, DmiBuildConfig};
    use std::sync::Arc;

    let store = temp_store("gateway");
    let cfg = DmiBuildConfig::office("Word");

    // Record the persistent artifacts from one session...
    let mut rec = Session::new(AppKind::Word.launch_small());
    rec.set_capture_pool(Some(dmi_store::recording_pool()));
    let rip = dmi_store::record_rip("Word", &mut rec, &cfg.rip);
    let caps = dmi_store::export_captures("Word", &mut rec);
    store.save_rip(&rip).expect("save rip");
    store.save_captures(&caps).expect("save captures");

    // ...and build the conventional baseline from another.
    let mut live = Session::new(AppKind::Word.launch_small());
    let (dmi, _) = Dmi::build(&mut live, &cfg);
    let model = Arc::new(dmi);

    let tasks: Vec<Arc<dmi_agent::AgentTask>> = dmi_tasks::all_tasks()
        .into_iter()
        .filter(|t| t.app.name() == "Word")
        .map(Arc::new)
        .collect();
    assert!(!tasks.is_empty(), "the task suite covers Word");
    let mix = || -> Vec<ServeRequest> {
        (0..9)
            .map(|i| ServeRequest {
                tenant: format!("tenant-{}", i % 3),
                app: "Word".to_string(),
                task: Arc::clone(&tasks[i % tasks.len()]),
                cfg: RunConfig::test(
                    dmi_llm::CapabilityProfile::gpt5_medium(),
                    if i % 3 == 0 { InterfaceMode::GuiOnly } else { InterfaceMode::GuiPlusDmi },
                    i as u64,
                ),
            })
            .collect()
    };
    let gw_cfg = || GatewayConfig { workers: 2, sessions_per_app: 4, max_in_flight: 8 };

    let mut cold = Gateway::new(
        vec![ServeApp::new("Word", Session::new(AppKind::Word.launch_small()), Some(model))],
        gw_cfg(),
    );
    let cold_report = cold.serve(mix());

    let warm_app =
        ServeApp::from_store("Word", &store, Session::new(AppKind::Word.launch_small()), &cfg)
            .expect("same-build donor boots from the store");
    let mut warm = Gateway::new(vec![warm_app], gw_cfg());
    let warm_report = warm.serve(mix());

    assert_eq!(cold_report.stats.completed, 9);
    assert_eq!(warm_report.stats.completed, 9);
    assert_eq!(warm_report.stats.faulted, 0);
    for (i, (c, w)) in cold_report.outcomes.iter().zip(&warm_report.outcomes).enumerate() {
        let cold_bytes = c.trace.as_ref().expect("cold trace").identity_bytes();
        let warm_bytes = w.trace.as_ref().expect("warm trace").identity_bytes();
        assert_eq!(
            cold_bytes, warm_bytes,
            "request {i}: store-booted gateway must serve the exact bytes a rip-booted one does"
        );
    }

    // A donor from a changed build is refused at boot, not served wrong.
    let v1 = Session::new(AppKind::Word.launch_small_version(1));
    match ServeApp::from_store("Word", &store, v1, &cfg) {
        Err(StoreError::PristineMismatch { app }) => assert_eq!(app, "Word"),
        Err(e) => panic!("expected PristineMismatch, got {e}"),
        Ok(_) => panic!("a changed build must not boot from stored artifacts"),
    }

    let _ = std::fs::remove_dir_all(store.root());
}

/// §persistence acceptance: `load(save(rip))` is byte-identical for
/// every Office app, and the capped capture export survives its own
/// round trip.
#[test]
#[ignore = "rip-heavy: CI runs these in release via `-- --ignored`"]
fn stored_rips_round_trip_byte_identically_for_every_office_app() {
    let store = temp_store("office");
    for kind in AppKind::ALL {
        let mut s = Session::new(kind.launch_small());
        s.set_capture_pool(Some(dmi_store::recording_pool()));
        let rip = dmi_store::record_rip(kind.name(), &mut s, &RipConfig::office(kind.name()));
        let caps = dmi_store::export_captures(kind.name(), &mut s);
        store.save_rip(&rip).expect("save rip");
        store.save_captures(&caps).expect("save captures");

        let loaded = store.load_rip(kind.name()).expect("load rip");
        assert_eq!(
            ung_bytes(&loaded.ung),
            ung_bytes(&rip.ung),
            "{}: stored UNG must be byte-identical to the ripped one",
            kind.name()
        );
        assert_eq!(loaded.stats, rip.stats, "{}: rip stats", kind.name());
        assert_eq!(loaded.pristine, rip.pristine, "{}: pristine signature", kind.name());
        assert_eq!(loaded.journal.entries(), rip.journal.entries(), "{}: journal", kind.name());

        let lcaps = store.load_captures(kind.name()).expect("load captures");
        assert!(!lcaps.entries.is_empty(), "{}: capture export persists", kind.name());
        assert!(
            lcaps.entries.len() <= dmi_store::STORE_CAPACITY,
            "{}: stored captures respect the retention cap",
            kind.name()
        );
    }
    let _ = std::fs::remove_dir_all(store.root());
}

/// §persistence acceptance: walking the Word version chain, each
/// incremental re-rip over the previous version's stored journal must
/// be byte-identical to a cold rip of the new version, with a nonzero
/// fraction of explorations confirmed from the journal (and a nonzero
/// fraction re-explored — the versions really differ).
#[test]
#[ignore = "rip-heavy: CI runs these in release via `-- --ignored`"]
fn incremental_rerip_is_byte_identical_to_cold_rip_across_word_versions() {
    let cfg = RipConfig::office("Word");
    let store = temp_store("chain");

    let mut v0 = Session::new(AppKind::Word.launch_small_version(0));
    let rip0 = dmi_store::record_rip("Word", &mut v0, &cfg);
    store.save_rip(&rip0).expect("save v0");
    let mut prior = store.load_rip("Word").expect("load v0");

    for v in [1usize, 2] {
        let mut cold_s = Session::new(AppKind::Word.launch_small_version(v));
        let (cold_g, _) = dmi_core::ripper::rip(&mut cold_s, &cfg);

        let mut inc_s = Session::new(AppKind::Word.launch_small_version(v));
        let (inc_g, _, inc) = dmi_store::rip_incremental(&mut inc_s, &cfg, &prior);

        assert_eq!(
            ung_bytes(&inc_g),
            ung_bytes(&cold_g),
            "v{v}: incremental re-rip must be byte-identical to the cold rip"
        );
        assert!(inc.edges_confirmed > 0, "v{v}: the v{} journal confirms something", v - 1);
        assert!(inc.edges_reexplored > 0, "v{v}: a changed build re-explores something");

        // Advance the chain: persist v's own journaled rip (which must
        // itself match the cold rip) as the next prior.
        let mut rec = Session::new(AppKind::Word.launch_small_version(v));
        let rip_v = dmi_store::record_rip("Word", &mut rec, &cfg);
        assert_eq!(
            ung_bytes(&rip_v.ung),
            ung_bytes(&cold_g),
            "v{v}: journaled recording rip must match the plain rip"
        );
        store.save_rip(&rip_v).expect("save chain link");
        prior = store.load_rip("Word").expect("load chain link");
    }
    let _ = std::fs::remove_dir_all(store.root());
}

/// §persistence acceptance: a same-build warm re-rip booted from the
/// stored capture export serves pooled captures (`pool_warm_hits > 0`)
/// and confirms every journaled exploration; a changed build is refused
/// the warm path entirely.
#[test]
#[ignore = "rip-heavy: CI runs these in release via `-- --ignored`"]
fn warm_rerip_hits_stored_captures_and_refuses_changed_builds() {
    let cfg = RipConfig::office("Word");
    let store = temp_store("warm");

    let mut v0 = Session::new(AppKind::Word.launch_small_version(0));
    v0.set_capture_pool(Some(dmi_store::recording_pool()));
    let rip0 = dmi_store::record_rip("Word", &mut v0, &cfg);
    let caps0 = dmi_store::export_captures("Word", &mut v0);
    store.save_rip(&rip0).expect("save rip");
    store.save_captures(&caps0).expect("save captures");
    let prior = store.load_rip("Word").expect("load rip");

    let mut warm = Session::new(AppKind::Word.launch_small_version(0));
    warm.set_capture_pool(Some(dmi_store::recording_pool()));
    let imported = dmi_store::warm_session(&store, "Word", &mut warm).expect("same build warms");
    assert!(imported > 0, "the stored export seeds the pool");

    let (g, _, inc) = dmi_store::rip_incremental(&mut warm, &cfg, &prior);
    assert_eq!(
        ung_bytes(&g),
        ung_bytes(&prior.ung),
        "same-build warm re-rip reproduces the stored UNG byte-for-byte"
    );
    assert!(inc.pool_warm_hits > 0, "warm re-rip must serve stored captures from the pool");
    assert_eq!(inc.edges_reexplored, 0, "an unchanged build confirms every exploration");
    assert!(inc.edges_confirmed > 0);

    let mut v1 = Session::new(AppKind::Word.launch_small_version(1));
    v1.set_capture_pool(Some(dmi_store::recording_pool()));
    match dmi_store::warm_session(&store, "Word", &mut v1) {
        Err(StoreError::PristineMismatch { app }) => assert_eq!(app, "Word"),
        Err(e) => panic!("expected PristineMismatch, got {e}"),
        Ok(n) => panic!("a changed build must not import stored captures (imported {n})"),
    }
    let _ = std::fs::remove_dir_all(store.root());
}
